package treematch

import (
	"sync"

	"orwlplace/internal/comm"
)

// mapWorkspace holds every scratch buffer the mapping pipeline needs:
// the ping-pong matrices of the symmetrize/extend/aggregate chain, the
// grouping engines' affinity and heap state, and the exhaustive DP
// tables. Map and GroupProcesses draw one from a pool per call, so a
// full multi-level mapping performs O(1) matrix allocations in steady
// state and the engines allocate only the group slices they return.
type mapWorkspace struct {
	// mA/mB back the matrix pipeline (work matrix and aggregate
	// destination, swapped level by level); sym holds the symmetrized
	// copy the grouping engines read rows from.
	mA, mB, sym *comm.Matrix

	// Greedy engine scratch.
	assigned []bool
	affinity []float64
	pairs    []comm.Pair
	cand     []int

	// Exhaustive engine scratch.
	dp, weight []float64
	choice     []int
	pos, idx   []int

	// Pipeline scratch: aggregate group index, oversubscription slot
	// counters, and the two mapGroups expansion buffers.
	groupOf    []int
	slots      []int
	seqA, seqB []int
}

var wsPool = sync.Pool{
	New: func() any {
		return &mapWorkspace{
			mA:  comm.NewMatrix(0),
			mB:  comm.NewMatrix(0),
			sym: comm.NewMatrix(0),
		}
	},
}

func getWorkspace() *mapWorkspace   { return wsPool.Get().(*mapWorkspace) }
func putWorkspace(ws *mapWorkspace) { wsPool.Put(ws) }

// other returns the pipeline matrix that is not cur, for ping-pong use.
func (ws *mapWorkspace) other(cur *comm.Matrix) *comm.Matrix {
	if cur == ws.mA {
		return ws.mB
	}
	return ws.mA
}

// Buffer growth helpers: reslice when capacity suffices, reallocate
// otherwise. Contents are unspecified unless the caller clears them.

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// pairBefore reports whether a pops before b: heavier symmetrized
// volume first, ties by (I,J) ascending — exactly the order
// comm.HeaviestPairs sorts by, so heap-based seeding consumes pairs in
// the same sequence as the old sorted-slice seeding.
func pairBefore(a, b comm.Pair) bool {
	if a.Volume != b.Volume {
		return a.Volume > b.Volume
	}
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// heapifyPairs establishes the max-heap property in O(len(h)).
func heapifyPairs(h []comm.Pair) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownPair(h, i)
	}
}

func siftDownPair(h []comm.Pair, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && pairBefore(h[l], h[best]) {
			best = l
		}
		if r < len(h) && pairBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popPair removes and returns the heap top.
func popPair(h []comm.Pair) (comm.Pair, []comm.Pair) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if len(h) > 1 {
		siftDownPair(h, 0)
	}
	return top, h
}
