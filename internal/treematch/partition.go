package treematch

import (
	"fmt"
	"sort"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// Partitioning records how a partitioned mapping split the task graph:
// one entry per topology subtree that received a dense TreeMatch run.
// The adaptive layer keys its drift tracking on this structure so
// re-placement can recompute one subtree at a time.
type Partitioning struct {
	Parts []Partition
}

// Partition is one element of a Partitioning: a subtree of the machine
// and the tasks mapped under it.
type Partition struct {
	// Depth is the tree depth of the subtree root.
	Depth int
	// Object is the DFS position of the subtree root among
	// Top.ObjectsAtDepth(Depth).
	Object int
	// Tasks lists the global task ids mapped under the subtree, ascending.
	Tasks []int
}

// Clone returns a deep copy.
func (p *Partitioning) Clone() *Partitioning {
	if p == nil {
		return nil
	}
	c := &Partitioning{Parts: make([]Partition, len(p.Parts))}
	for i, part := range p.Parts {
		tasks := make([]int, len(part.Tasks))
		copy(tasks, part.Tasks)
		c.Parts[i] = Partition{Depth: part.Depth, Object: part.Object, Tasks: tasks}
	}
	return c
}

// MapAffinity is Map lifted onto the representation-independent
// affinity surface, with partitioned mapping above the threshold.
//
// At or below opt.PartitionThreshold tasks the affinity is materialized
// and the single-shot dense Map runs — byte-for-byte the same decisions
// as Map, whichever representation carries the affinity (the golden
// equivalence tests pin this). Above it the task graph is split along
// weak cuts instead: the mapper descends the topology tree level by
// level, at each node partitioning the tasks among the child subtrees
// with a sparse variant of the greedy grouper (same seed/grow/tie
// rules, O(nnz log nnz)); sibling subtrees are equidistant from
// everything outside their parent, so the assignment of partitions to
// siblings is free and the recursion needs no global ordering pass.
// When a subtree is small enough, the remaining tasks are mapped by the
// existing dense TreeMatch against that subtree and stitched into the
// machine-global mapping. Nothing on that path touches an n×n slab, so
// a 10k-task sparse graph maps in milliseconds.
func MapAffinity(top *topology.Topology, a comm.Affinity, opt Options) (*Mapping, error) {
	opt = opt.withDefaults()
	p := a.Order()
	if p == 0 {
		return nil, fmt.Errorf("treematch: empty communication matrix")
	}
	if opt.PartitionThreshold < 0 || p <= opt.PartitionThreshold {
		return Map(top, a.Dense(), opt)
	}
	cores := top.Cores()
	if len(cores) == 0 {
		return nil, fmt.Errorf("treematch: topology %s has no cores", top.Attrs.Name)
	}
	res := &Mapping{
		Top:        top,
		ComputePU:  make([]int, p),
		ControlPU:  make([]int, p),
		CoreOf:     make([]int, p),
		Partitions: &Partitioning{},
	}
	for i := range res.ControlPU {
		res.ControlPU[i] = -1
	}
	st := &partitionedMap{
		top:       top,
		opt:       opt,
		res:       res,
		pt:        newPartitioner(a),
		coreDepth: cores[0].Depth(),
		local:     newNegOnes(p),
		posCache:  map[int]map[*topology.Object]int{},
	}
	tasks := make([]int, p)
	for i := range tasks {
		tasks[i] = i
	}
	if err := st.descend(top.Root, tasks); err != nil {
		return nil, err
	}
	res.Mode = st.mode
	return res, nil
}

// RemapPartition recomputes the mapping of one partition of a
// partitioned mapping from a fresh (global-index) affinity, writing the
// new bindings of that partition's tasks into mp and leaving every
// other task untouched. This is the partial-recompute primitive behind
// per-subtree drift: only the tasks of the drifted subtree can move, so
// migration cost is bounded by the partition size.
func RemapPartition(mp *Mapping, a comm.Affinity, part Partition, opt Options) error {
	opt = opt.withDefaults()
	if mp.Partitions == nil {
		return fmt.Errorf("treematch: remap partition of an unpartitioned mapping")
	}
	objs := mp.Top.ObjectsAtDepth(part.Depth)
	if part.Object < 0 || part.Object >= len(objs) {
		return fmt.Errorf("treematch: partition object %d out of range (%d at depth %d)",
			part.Object, len(objs), part.Depth)
	}
	if len(part.Tasks) == 0 {
		return nil
	}
	for _, g := range part.Tasks {
		if g < 0 || g >= a.Order() || g >= len(mp.ComputePU) {
			return fmt.Errorf("treematch: partition task %d out of range", g)
		}
	}
	obj := objs[part.Object]
	sub, err := topology.Subtree(mp.Top, obj)
	if err != nil {
		return err
	}
	local := newNegOnes(a.Order())
	subM := inducedMatrix(a, part.Tasks, local)
	var subMp *Mapping
	if subM.Order() > opt.PartitionThreshold && sub.NumCores() > 1 {
		subMp, err = MapAffinity(sub, subM, opt)
	} else {
		subMp, err = Map(sub, subM, opt)
	}
	if err != nil {
		return err
	}
	stitchPartition(mp, subMp, obj, part.Tasks)
	return nil
}

// partitionedMap is the recursion state of the partitioned path.
type partitionedMap struct {
	top       *topology.Topology
	opt       Options
	res       *Mapping
	pt        *partitioner
	coreDepth int
	local     []int // global id -> induced-submatrix index scratch, all -1
	posCache  map[int]map[*topology.Object]int
	mode      ControlMode
	modeSet   bool
}

// descend maps the given tasks under obj: densely when the instance is
// small relative to the subtree, otherwise by splitting among the
// effective children and recursing.
func (st *partitionedMap) descend(obj *topology.Object, tasks []int) error {
	if len(tasks) == 0 {
		return nil
	}
	kids := effectiveChildren(obj, st.coreDepth)
	if kids == nil || len(tasks) <= st.denseStop(obj) {
		return st.mapDense(obj, tasks)
	}
	groups := st.pt.split(tasks, len(kids))
	for k, g := range groups {
		if err := st.descend(kids[k], g); err != nil {
			return err
		}
	}
	return nil
}

// denseStop is the instance size at or below which a subtree is mapped
// by the dense single-shot TreeMatch: small enough that its O(n²)
// pipeline is cheap, large enough that the subtree's cores still get a
// jointly-optimized arrangement. Capped at the partition threshold so
// the sparse path never materializes a slab bigger than the dense path
// would have accepted outright.
func (st *partitionedMap) denseStop(obj *topology.Object) int {
	ppc := st.top.NumPUs() / st.top.NumCores()
	cores := len(obj.PUs()) / ppc
	stop := 2 * cores
	if stop < 32 {
		stop = 32
	}
	if stop > st.opt.PartitionThreshold {
		stop = st.opt.PartitionThreshold
	}
	return stop
}

// mapDense runs the existing TreeMatch on the induced (symmetrized)
// submatrix against the subtree and stitches the result.
func (st *partitionedMap) mapDense(obj *topology.Object, tasks []int) error {
	if core := singleCoreOf(obj); core != nil {
		st.mapCoreLeaf(core, obj, tasks)
		return nil
	}
	sub, err := topology.Subtree(st.top, obj)
	if err != nil {
		return fmt.Errorf("treematch: subtree %s: %w", obj, err)
	}
	// The induced matrix comes from the symmetrized adjacency: a
	// principal submatrix of the symmetrized affinity equals the
	// symmetrization of the principal submatrix, and Map's internal
	// re-symmetrization only scales it uniformly — scale-invariant
	// decisions, so this matches extracting from the raw affinity.
	subM := st.pt.induced(tasks, st.local)
	subMp, err := Map(sub, subM, st.opt)
	if err != nil {
		return fmt.Errorf("treematch: partition at %s: %w", obj, err)
	}
	stitchPartition(st.res, subMp, obj, tasks)
	if subMp.Oversubscribed {
		st.res.Oversubscribed = true
	}
	if !st.modeSet {
		st.mode, st.modeSet = subMp.Mode, true
	} else if st.mode != subMp.Mode {
		st.mode = ControlNone
	}
	st.res.Partitions.Parts = append(st.res.Partitions.Parts, Partition{
		Depth:  obj.Depth(),
		Object: st.posAtDepth(obj),
		Tasks:  tasks,
	})
	return nil
}

// singleCoreOf returns the core when obj's subtree holds exactly one
// (obj is a core or an arity-1 chain down to one), else nil.
func singleCoreOf(obj *topology.Object) *topology.Object {
	cur := obj
	for cur.Type != topology.Core {
		if len(cur.Children) != 1 {
			return nil
		}
		cur = cur.Children[0]
	}
	return cur
}

// mapCoreLeaf binds a leaf partition's tasks to a single core without
// building a subtree or running the dense pipeline. It reproduces
// exactly what Map produces for a one-core machine: tasks in ascending
// order round-robin over the core's PUs (the oversubscribed virtual
// level degenerates to one group per core), control threads on the
// hyperthread sibling only in the non-oversubscribed hyperthreaded
// case, and the OS scheduler otherwise.
func (st *partitionedMap) mapCoreLeaf(core, obj *topology.Object, tasks []int) {
	pus := core.Children
	oversub := len(tasks) > 1
	mode := ControlNone
	if st.opt.ControlThreads && !oversub && st.top.Attrs.Hyperthreaded && len(pus) >= 2 {
		mode = ControlHyperthread
	}
	for slot, g := range tasks {
		st.res.ComputePU[g] = pus[slot%len(pus)].LogicalIndex
		st.res.CoreOf[g] = core.LogicalIndex
		if mode == ControlHyperthread {
			st.res.ControlPU[g] = pus[1].LogicalIndex
		} else {
			st.res.ControlPU[g] = -1
		}
	}
	if oversub {
		st.res.Oversubscribed = true
	}
	if !st.modeSet {
		st.mode, st.modeSet = mode, true
	} else if st.mode != mode {
		st.mode = ControlNone
	}
	st.res.Partitions.Parts = append(st.res.Partitions.Parts, Partition{
		Depth:  obj.Depth(),
		Object: st.posAtDepth(obj),
		Tasks:  tasks,
	})
}

// posAtDepth returns the DFS position of obj among the objects at its
// depth, memoised per depth.
func (st *partitionedMap) posAtDepth(obj *topology.Object) int {
	depth := obj.Depth()
	m, ok := st.posCache[depth]
	if !ok {
		m = map[*topology.Object]int{}
		for i, o := range st.top.ObjectsAtDepth(depth) {
			m[o] = i
		}
		st.posCache[depth] = m
	}
	return m[obj]
}

// effectiveChildren returns the first level strictly below obj with
// more than one object (skipping arity-1 chains), or nil when that
// would descend past the core level — the recursion then stops and
// maps densely.
func effectiveChildren(obj *topology.Object, coreDepth int) []*topology.Object {
	cur := obj
	for cur.Depth() < coreDepth {
		if len(cur.Children) > 1 {
			return cur.Children
		}
		cur = cur.Children[0]
	}
	return nil
}

// stitchPartition translates a subtree-local mapping into the global
// mapping: subtree logical indexes are DFS-contiguous slices of the
// global ones, so the translation is a constant offset per index space.
func stitchPartition(mp *Mapping, sub *Mapping, obj *topology.Object, tasks []int) {
	firstPU := obj.PUs()[0]
	puBase := firstPU.LogicalIndex
	coreBase := 0
	if core := firstPU.AncestorOfType(topology.Core); core != nil {
		coreBase = core.LogicalIndex
	}
	for li, g := range tasks {
		mp.ComputePU[g] = puBase + sub.ComputePU[li]
		mp.CoreOf[g] = coreBase + sub.CoreOf[li]
		if sub.ControlPU[li] >= 0 {
			mp.ControlPU[g] = puBase + sub.ControlPU[li]
		} else {
			mp.ControlPU[g] = -1
		}
	}
}

// inducedMatrix extracts the dense submatrix of a over tasks (ascending
// global ids) in O(sum of row nonzeros). local is caller scratch of
// length >= a.Order(), all -1 on entry and restored to -1 on return.
func inducedMatrix(a comm.Affinity, tasks []int, local []int) *comm.Matrix {
	for li, g := range tasks {
		local[g] = li
	}
	m := comm.NewMatrix(len(tasks))
	for li, g := range tasks {
		a.ForEachRow(g, func(j int, v float64) {
			if lj := local[j]; lj >= 0 {
				m.Set(li, lj, v)
			}
		})
	}
	for _, g := range tasks {
		local[g] = -1
	}
	return m
}

func newNegOnes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// symCSR is a compressed sparse row view of the symmetrized affinity:
// row i holds its nonzero columns ascending with the full symmetrized
// volume a[i][j]+a[j][i]. Built once per MapAffinity, it replaces
// per-row hash-map iteration (and its per-call sort) with straight
// slice walks on the partitioning hot path.
type symCSR struct {
	rowPtr []int
	col    []int
	val    []float64
}

// buildSymCSR gathers the nonzeros of a in one bulk pass and builds the
// symmetrized adjacency with a counting sort by row; rows are then
// sorted by column and duplicate coordinates (an (i,j) and its mirror
// both present) merged in place. O(nnz log maxdeg + n).
func buildSymCSR(a comm.Affinity) symCSR {
	n := a.Order()
	nnz := a.NNZ()
	ei := make([]int, 0, nnz)
	ej := make([]int, 0, nnz)
	ev := make([]float64, 0, nnz)
	a.ForEach(func(i, j int, v float64) {
		if i != j {
			ei = append(ei, i)
			ej = append(ej, j)
			ev = append(ev, v)
		}
	})
	deg := make([]int, n+1)
	for k := range ei {
		deg[ei[k]]++
		deg[ej[k]]++
	}
	rowPtr := make([]int, n+1)
	sum := 0
	for i := 0; i < n; i++ {
		rowPtr[i] = sum
		sum += deg[i]
	}
	rowPtr[n] = sum
	col := make([]int, sum)
	val := make([]float64, sum)
	pos := make([]int, n)
	copy(pos, rowPtr[:n])
	for k := range ei {
		i, j, v := ei[k], ej[k], ev[k]
		col[pos[i]], val[pos[i]] = j, v
		pos[i]++
		col[pos[j]], val[pos[j]] = i, v
		pos[j]++
	}
	// Sort each row by column and merge duplicates, compacting in place.
	w := 0
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		row := col[lo:hi]
		rv := val[lo:hi]
		sort.Sort(&rowSorter{row, rv})
		rowPtr[i] = w
		for k := 0; k < len(row); {
			c, v := row[k], rv[k]
			for k++; k < len(row) && row[k] == c; k++ {
				v += rv[k]
			}
			if v != 0 {
				col[w], val[w] = c, v
				w++
			}
		}
	}
	rowPtr[n] = w
	return symCSR{rowPtr: rowPtr, col: col[:w], val: val[:w]}
}

type rowSorter struct {
	col []int
	val []float64
}

func (r *rowSorter) Len() int           { return len(r.col) }
func (r *rowSorter) Less(a, b int) bool { return r.col[a] < r.col[b] }
func (r *rowSorter) Swap(a, b int) {
	r.col[a], r.col[b] = r.col[b], r.col[a]
	r.val[a], r.val[b] = r.val[b], r.val[a]
}

// partitioner splits task subsets along weak cuts of the symmetrized
// adjacency with the greedy grouper's decision rules — seed each group
// with the heaviest fully-unassigned pair (ties by (I,J)), grow by
// maximum affinity to the group with lowest-index tie-break, fall back
// to the lowest unassigned task — but the grow step selects from a
// lazily-validated max-heap fed by O(degree) affinity updates instead
// of an O(n) scan, so a split runs in O(nnz log nnz) of the subset.
// The per-task state is epoch-tagged and reused across recursion nodes.
type partitioner struct {
	csr      symCSR
	member   []int // member[g] == epoch: g belongs to the current subset
	epoch    int
	aff      []float64
	assigned []bool
	pairs    []comm.Pair
	cand     []candEntry
}

func newPartitioner(a comm.Affinity) *partitioner {
	n := a.Order()
	return &partitioner{
		csr:      buildSymCSR(a),
		member:   make([]int, n),
		aff:      make([]float64, n),
		assigned: make([]bool, n),
	}
}

// induced extracts the dense symmetrized submatrix over tasks. local is
// scratch of length >= n, all -1 on entry, restored on return.
func (pt *partitioner) induced(tasks []int, local []int) *comm.Matrix {
	for li, g := range tasks {
		local[g] = li
	}
	m := comm.NewMatrix(len(tasks))
	for li, g := range tasks {
		for k := pt.csr.rowPtr[g]; k < pt.csr.rowPtr[g+1]; k++ {
			if lj := local[pt.csr.col[k]]; lj >= 0 {
				m.Set(li, lj, pt.csr.val[k])
			}
		}
	}
	for _, g := range tasks {
		local[g] = -1
	}
	return m
}

// split partitions tasks (ascending global ids) into parts groups of
// ceil(len/parts) members (trailing groups smaller once tasks run out,
// exactly as zero-affinity padding would fill them last). Returned
// groups have ascending members and are ordered by smallest member;
// empty groups sort last.
func (pt *partitioner) split(tasks []int, parts int) [][]int {
	size := (len(tasks) + parts - 1) / parts
	pt.epoch++
	for _, g := range tasks {
		pt.member[g] = pt.epoch
	}

	pairs := pt.pairs[:0]
	for _, i := range tasks {
		for k := pt.csr.rowPtr[i]; k < pt.csr.rowPtr[i+1]; k++ {
			j, v := pt.csr.col[k], pt.csr.val[k]
			if j > i && v > 0 && pt.member[j] == pt.epoch {
				pairs = append(pairs, comm.Pair{I: i, J: j, Volume: v})
			}
		}
	}
	pt.pairs = pairs // keep the grown backing array
	// Seeds are consumed heaviest-first with a cursor over the sorted
	// list: sequential scans beat a binary heap's scattered sift paths
	// at this size, and skipping stale (partly assigned) pairs is O(1).
	sort.Sort(pairSorter(pairs))
	seedAt := 0
	cand := pt.cand[:0]

	cursor := 0 // lowest-unassigned scan position in tasks
	remaining := len(tasks)
	var group []int
	admit := func(e int) {
		pt.assigned[e] = true
		remaining--
		group = append(group, e)
		for k := pt.csr.rowPtr[e]; k < pt.csr.rowPtr[e+1]; k++ {
			j, v := pt.csr.col[k], pt.csr.val[k]
			if v <= 0 || pt.member[j] != pt.epoch || pt.assigned[j] {
				continue
			}
			pt.aff[j] += v
			cand = pushCand(cand, candEntry{pt.aff[j], j})
		}
	}

	groups := make([][]int, 0, parts)
	for gi := 0; gi < parts; gi++ {
		group = make([]int, 0, size)
		if remaining > 0 && size >= 2 {
			for seedAt < len(pairs) {
				pr := pairs[seedAt]
				seedAt++
				if !pt.assigned[pr.I] && !pt.assigned[pr.J] {
					admit(pr.I)
					admit(pr.J)
					break
				}
			}
		}
		if len(group) == 0 && remaining > 0 {
			for pt.assigned[tasks[cursor]] {
				cursor++
			}
			admit(tasks[cursor])
		}
		for len(group) < size && remaining > 0 {
			best := -1
			for len(cand) > 0 {
				top := cand[0]
				if pt.assigned[top.idx] || pt.aff[top.idx] != top.vol {
					cand = popCand(cand) // stale
					continue
				}
				if top.vol > 0 {
					best = top.idx
					cand = popCand(cand)
				}
				break
			}
			if best == -1 {
				for pt.assigned[tasks[cursor]] {
					cursor++
				}
				best = tasks[cursor]
			}
			admit(best)
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	pt.cand = cand[:0]
	for _, g := range tasks {
		pt.aff[g] = 0
		pt.assigned[g] = false
	}
	sort.SliceStable(groups, func(a, b int) bool {
		ga, gb := groups[a], groups[b]
		if len(ga) == 0 || len(gb) == 0 {
			return len(gb) == 0 && len(ga) > 0
		}
		return ga[0] < gb[0]
	})
	return groups
}

// pairSorter orders pairs heaviest-first with the grouping engines'
// tie-break (volume descending, then (I,J) ascending), so a cursor over
// the sorted list consumes seeds in exactly the order repeated heap
// pops would.
type pairSorter []comm.Pair

func (p pairSorter) Len() int           { return len(p) }
func (p pairSorter) Less(a, b int) bool { return pairBefore(p[a], p[b]) }
func (p pairSorter) Swap(a, b int)      { p[a], p[b] = p[b], p[a] }

// candEntry is one lazily-validated candidate of the sparse grow heap:
// the entity and the affinity it had when pushed. Stale entries (the
// affinity has since grown, or the entity was assigned) are discarded
// at pop time.
type candEntry struct {
	vol float64
	idx int
}

func candBefore(a, b candEntry) bool {
	if a.vol != b.vol {
		return a.vol > b.vol
	}
	return a.idx < b.idx
}

func pushCand(h []candEntry, e candEntry) []candEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !candBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func popCand(h []candEntry) []candEntry {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && candBefore(h[l], h[best]) {
			best = l
		}
		if r < len(h) && candBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return h
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
