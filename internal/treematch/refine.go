package treematch

import "orwlplace/internal/comm"

// RefineSwap improves a grouping by hill climbing: it repeatedly
// performs the inter-group entity swap with the largest gain in
// intra-group volume until no swap helps or maxRounds passes have run.
// It is an optional post-pass on the greedy engine, recovering part of
// the gap to the optimal exponential engine at linear-ish cost
// (an ablation target of DESIGN.md §5, extending the paper's
// "optimal … to greedy" engine choice).
//
// The input groups are not modified; the refined grouping is returned
// normalized (sorted members, groups ordered by smallest member).
func RefineSwap(m *comm.Matrix, groups [][]int, maxRounds int) [][]int {
	return refineSwapSym(m.Symmetrized(), groups, maxRounds)
}

// refineSwapSym is RefineSwap on an already-symmetric matrix, read
// directly — the pipeline in Map calls it on the level matrix without
// paying a per-level O(n²) symmetrized copy (a uniform scaling of the
// volumes changes no swap decision).
func refineSwapSym(sym *comm.Matrix, groups [][]int, maxRounds int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
	}
	// conn(e, g) = total volume between e and the members of g.
	conn := func(e int, g []int) float64 {
		var s float64
		for _, x := range g {
			if x != e {
				s += sym.At(e, x)
			}
		}
		return s
	}
	for round := 0; round < maxRounds; round++ {
		bestGain := 0.0
		var bg1, bi1, bg2, bi2 int
		for g1 := 0; g1 < len(out); g1++ {
			for g2 := g1 + 1; g2 < len(out); g2++ {
				for i1, a := range out[g1] {
					for i2, b := range out[g2] {
						gain := conn(b, out[g1]) - sym.At(a, b) + conn(a, out[g2]) - sym.At(a, b) -
							conn(a, out[g1]) - conn(b, out[g2])
						if gain > bestGain+1e-12 {
							bestGain = gain
							bg1, bi1, bg2, bi2 = g1, i1, g2, i2
						}
					}
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		out[bg1][bi1], out[bg2][bi2] = out[bg2][bi2], out[bg1][bi1]
	}
	normalizeGroups(out)
	return out
}
