// Package treematch implements the mapping algorithm of the paper
// (Algorithm 1), an adaptation of the TreeMatch process-placement
// algorithm to thread placement in the ORWL runtime.
//
// Given a hardware topology tree and a communication matrix between
// computing entities, Map produces an assignment of each entity to a
// processing unit that groups heavily-communicating entities under
// shared caches and NUMA nodes. The two adaptations described in §IV-A
// are included: accounting for the runtime's control threads (reserving
// hyperthread siblings, or spare cores, for them) and oversubscription
// when there are more entities than computing resources.
package treematch

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// ControlMode describes how control threads were accounted for by the
// mapping (second adaptation of Algorithm 1).
type ControlMode int

const (
	// ControlNone leaves control threads to the OS scheduler: there was
	// no spare capacity, or control-thread accounting was disabled.
	ControlNone ControlMode = iota
	// ControlHyperthread reserves one hyperthread sibling per physical
	// core: the compute thread gets one PU, its control threads the
	// other.
	ControlHyperthread
	// ControlSpareCores maps control threads onto cores left over after
	// placing one compute entity per core.
	ControlSpareCores
)

var controlModeNames = [...]string{
	ControlNone:        "none",
	ControlHyperthread: "hyperthread-sibling",
	ControlSpareCores:  "spare-cores",
}

// String names the control mode.
func (m ControlMode) String() string {
	if m < 0 || int(m) >= len(controlModeNames) {
		return fmt.Sprintf("ControlMode(%d)", int(m))
	}
	return controlModeNames[m]
}

// Options tunes Map. The zero value gives the paper's defaults.
type Options struct {
	// ControlThreads enables the control-thread adaptation
	// (extend_to_manage_control_threads in Algorithm 1).
	ControlThreads bool
	// ControlVolumeFraction is the fraction of a task's total
	// communication volume attributed to its control thread when control
	// entities are added to the matrix (spare-core mode). Default 0.1.
	ControlVolumeFraction float64
	// ExhaustiveLimit is the largest number of entities for which
	// GroupProcesses uses the optimal exponential engine; above it the
	// linear greedy engine runs. Default 12.
	ExhaustiveLimit int
	// RefineRounds, when positive, runs up to that many swap-refinement
	// passes (RefineSwap) after every grouping step — an optional
	// quality/time trade-off on top of the greedy engine. Default 0
	// (off), the paper's configuration.
	RefineRounds int
	// PartitionThreshold is the largest order MapAffinity maps densely;
	// above it the task graph is partitioned along weak cuts and each
	// partition is mapped against its topology subtree. Default
	// DefaultPartitionThreshold; negative disables partitioning (always
	// dense). Map itself ignores it.
	PartitionThreshold int
}

// DefaultPartitionThreshold is the order above which MapAffinity
// switches from the dense single-shot TreeMatch to the partitioned
// sparse path. It matches comm.DenseOrderThreshold: below it the dense
// pipeline's constant factors win; above it the O(n²) symmetrize/
// extend/aggregate chain dominates the mapping time.
const DefaultPartitionThreshold = comm.DenseOrderThreshold

func (o Options) withDefaults() Options {
	if o.ControlVolumeFraction == 0 {
		o.ControlVolumeFraction = 0.1
	}
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 12
	}
	if o.PartitionThreshold == 0 {
		o.PartitionThreshold = DefaultPartitionThreshold
	}
	return o
}

// Canonical returns the options with the defaults filled in, so
// configurations that Map treats identically also compare (and hash)
// alike.
func (o Options) Canonical() Options { return o.withDefaults() }

// Mapping is the result of Map: a binding of every compute entity (and,
// when possible, of its control threads) to PUs of the topology.
type Mapping struct {
	Top *topology.Topology
	// ComputePU[i] is the logical PU index entity i is bound to.
	ComputePU []int
	// ControlPU[i] is the logical PU index the control threads of
	// entity i are bound to, or -1 when they are left to the OS.
	ControlPU []int
	// Mode records how control threads were handled.
	Mode ControlMode
	// Oversubscribed is true when there were more entities than cores
	// and a virtual tree level was added.
	Oversubscribed bool
	// CoreOf[i] is the logical core index entity i runs on (diagnostic).
	CoreOf []int
	// Partitions describes the partition structure when the mapping was
	// produced by the partitioned path (MapAffinity above the
	// threshold); nil for a single-shot dense mapping. Adaptive
	// re-placement uses it to track drift and recompute per subtree.
	Partitions *Partitioning
}

// PUSet returns the set of OS indexes of all PUs used by compute
// entities.
func (mp *Mapping) PUSet() topology.CPUSet {
	s := topology.NewCPUSet()
	for _, pu := range mp.ComputePU {
		s.Add(mp.Top.PU(pu).OSIndex)
	}
	return s
}

// Map runs Algorithm 1: it adapts the communication matrix for control
// threads, handles oversubscription, groups entities bottom-up by
// communication affinity along the topology tree, and assigns the
// resulting group hierarchy to cores.
func Map(top *topology.Topology, m *comm.Matrix, opt Options) (*Mapping, error) {
	opt = opt.withDefaults()
	p := m.Order()
	if p == 0 {
		return nil, fmt.Errorf("treematch: empty communication matrix")
	}
	cores := top.NumCores()
	pusPerCore := top.NumPUs() / cores

	// All transient state — the symmetrize/extend/aggregate matrix
	// chain and the grouping engines' scratch — lives in a pooled
	// workspace, so a full multi-level Map does O(1) matrix
	// allocations. Only one pipeline matrix is live at a time; each
	// transformation writes into the other (ws.other) and swaps.
	ws := getWorkspace()
	defer putWorkspace(ws)

	// The mapping tree has the physical cores as leaves: one compute
	// entity per core ("we map only one compute intensive task per
	// physical core"). Arity-1 levels (single socket per NUMA node,
	// private cache chains) do not affect grouping and are skipped.
	arities := coreArities(top)

	// --- Step 1: extend m to manage control threads. ---
	mode := ControlNone
	controlOwner := []int(nil) // extended-entity index -> owning task
	work := m.SymmetrizedInto(ws.mA)
	switch {
	case !opt.ControlThreads:
		// Nothing to do.
	case top.Attrs.Hyperthreaded && pusPerCore >= 2 && p <= cores:
		// One hyperthread sibling per core is reserved for control
		// threads; no matrix extension needed.
		mode = ControlHyperthread
	case p < cores:
		// Spare cores exist: add control entities communicating with
		// their tasks so that grouping pulls each control thread next
		// to its task.
		spare := cores - p
		if spare > p {
			spare = p
		}
		owners := heaviestTasks(work, spare)
		ext := work.ExtendInto(ws.other(work), p+spare)
		for ci, task := range owners {
			vol := rowSum(work, task) * opt.ControlVolumeFraction
			if vol == 0 {
				vol = 1 // keep a tiny pull towards the task
			}
			ext.AddSym(p+ci, task, vol)
		}
		work = ext
		controlOwner = owners
		mode = ControlSpareCores
	}
	order := work.Order()

	// --- Step 2: manage oversubscription. ---
	oversub := false
	vArity := 1
	if order > cores {
		// Add a virtual level below the cores so there are enough
		// leaves; entities sharing a virtual parent share a core.
		vArity = (order + cores - 1) / cores
		arities = append(arities, vArity)
		oversub = true
		mode = ControlNone
		controlOwner = nil
		work = m.SymmetrizedInto(work) // drop any control extension
		order = work.Order()
	}
	leaves := 1
	for _, a := range arities {
		leaves *= a
	}
	if order < leaves {
		work = work.ExtendInto(ws.other(work), leaves)
	}

	// --- Steps 3-7: group bottom-up, aggregating the matrix. ---
	// partitions[k] is the grouping performed at loop iteration k, from
	// the leaf-parent level upwards.
	partitions := make([][][]int, 0, len(arities))
	cur := work
	for lvl := len(arities) - 1; lvl >= 0; lvl-- {
		a := arities[lvl]
		// cur is symmetric by construction (symmetrize, then
		// symmetry-preserving extend/AddSym/aggregate steps), so the
		// engines read its rows directly.
		groups, err := groupProcesses(cur, a, opt.ExhaustiveLimit, ws, true)
		if err != nil {
			return nil, fmt.Errorf("treematch: level %d: %w", lvl, err)
		}
		if opt.RefineRounds > 0 && a > 1 && a < cur.Order() {
			groups = refineSwapSym(cur, groups, opt.RefineRounds)
		}
		partitions = append(partitions, groups)
		next := ws.other(cur)
		if err := cur.AggregateInto(next, groups, growInts(&ws.groupOf, cur.Order())); err != nil {
			return nil, fmt.Errorf("treematch: aggregate level %d: %w", lvl, err)
		}
		cur = next
	}

	// --- Step 8: MapGroups — expand the hierarchy into a leaf order. ---
	leafOrder := mapGroups(partitions, ws)
	if len(leafOrder) != leaves {
		return nil, fmt.Errorf("treematch: internal: %d leaves ordered, want %d", len(leafOrder), leaves)
	}

	// Translate leaf positions into PU bindings.
	res := &Mapping{
		Top:            top,
		ComputePU:      make([]int, p),
		ControlPU:      make([]int, p),
		CoreOf:         make([]int, p),
		Mode:           mode,
		Oversubscribed: oversub,
	}
	for i := range res.ControlPU {
		res.ControlPU[i] = -1
	}
	slotOf := growInts(&ws.slots, cores) // per-core next PU slot for oversubscription
	clear(slotOf)
	coreObjs := top.Cores()
	for pos, ent := range leafOrder {
		if ent < 0 || ent >= order {
			continue // padding entity
		}
		coreIdx := pos
		if oversub {
			coreIdx = pos / vArity
		}
		core := coreObjs[coreIdx]
		switch {
		case ent < p:
			slot := 0
			if oversub {
				slot = slotOf[coreIdx] % len(core.Children)
				slotOf[coreIdx]++
			}
			res.ComputePU[ent] = core.Children[slot].LogicalIndex
			res.CoreOf[ent] = coreIdx
			if mode == ControlHyperthread && len(core.Children) > 1 {
				res.ControlPU[ent] = core.Children[1].LogicalIndex
			}
		default:
			// A control entity: bind the owner's control threads to
			// this core.
			task := controlOwner[ent-p]
			res.ControlPU[task] = core.Children[0].LogicalIndex
		}
	}
	return res, nil
}

// coreArities returns the arities of the topology tree truncated at the
// core level, with arity-1 levels removed. The product equals the number
// of cores.
func coreArities(top *topology.Topology) []int {
	all := top.Arities()
	// The last level is Core -> PU; drop it so cores are the leaves.
	all = all[:len(all)-1]
	var out []int
	for _, a := range all {
		if a > 1 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = []int{top.NumCores()}
	}
	return out
}

// heaviestTasks returns the indexes of the count tasks with the largest
// total communication volume, in decreasing order (ties by index).
func heaviestTasks(m *comm.Matrix, count int) []int {
	type tv struct {
		task int
		vol  float64
	}
	all := make([]tv, m.Order())
	for i := range all {
		all[i] = tv{i, rowSum(m, i)}
	}
	for i := 1; i < len(all); i++ { // insertion sort: small n, stable
		for j := i; j > 0 && (all[j].vol > all[j-1].vol ||
			(all[j].vol == all[j-1].vol && all[j].task < all[j-1].task)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if count > len(all) {
		count = len(all)
	}
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = all[i].task
	}
	return out
}

func rowSum(m *comm.Matrix, i int) float64 {
	var s float64
	for j := 0; j < m.Order(); j++ {
		s += m.At(i, j)
	}
	return s
}

// mapGroups expands the bottom-up grouping hierarchy into the final
// leaf order: element k of the result is the entity assigned to leaf k.
// partitions[0] is the leaf-parent grouping, the last element the
// top-level grouping. The expansion ping-pongs between two workspace
// buffers; the returned slice aliases the workspace and is only valid
// until the next use of ws.
func mapGroups(partitions [][][]int, ws *mapWorkspace) []int {
	// Start from the top: the final aggregation has one entity per
	// top-level group, in group order.
	top := partitions[len(partitions)-1]
	seq := growInts(&ws.seqA, len(top))
	for i := range seq {
		seq[i] = i
	}
	next := ws.seqB
	// Walk back down, expanding each super-entity into its members.
	for lvl := len(partitions) - 1; lvl >= 0; lvl-- {
		groups := partitions[lvl]
		total := 0
		for _, e := range seq {
			total += len(groups[e])
		}
		next = next[:0]
		if cap(next) < total {
			next = make([]int, 0, total)
		}
		for _, e := range seq {
			next = append(next, groups[e]...)
		}
		seq, next = next, seq[:0]
	}
	ws.seqA, ws.seqB = seq, next // keep the grown buffers pooled
	return seq
}
