package treematch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"orwlplace/internal/comm"
)

// GroupProcesses partitions the m.Order() entities into groups of size
// arity, maximising the communication volume kept inside groups
// (function GroupProcesses of Algorithm 1). The order must be divisible
// by arity. For at most exhaustiveLimit entities an optimal exponential
// algorithm runs; beyond that a greedy engine is used, as in the paper
// ("depending on the problem size, we go from an optimal but exponential
// algorithm to a greedy one").
//
// Groups are returned with members in increasing order and the group
// list sorted by smallest member, so results are deterministic. The
// returned slices are freshly allocated and the caller's to keep.
func GroupProcesses(m *comm.Matrix, arity, exhaustiveLimit int) ([][]int, error) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return groupProcesses(m, arity, exhaustiveLimit, ws, false)
}

// groupProcesses is GroupProcesses running on a caller-provided
// workspace, so the per-level calls inside Map share one scratch set.
// isSym declares the input already symmetric: the engines then read
// its rows directly instead of building a symmetrized copy per level.
// (Symmetrizing a symmetric matrix doubles every entry — a uniform
// positive scaling that cannot change any greedy or DP selection, so
// both paths pick identical groups.)
func groupProcesses(m *comm.Matrix, arity, exhaustiveLimit int, ws *mapWorkspace, isSym bool) ([][]int, error) {
	n := m.Order()
	if arity < 1 {
		return nil, fmt.Errorf("treematch: arity %d < 1", arity)
	}
	if n%arity != 0 {
		return nil, fmt.Errorf("treematch: %d entities not divisible by arity %d", n, arity)
	}
	var groups [][]int
	switch {
	case arity == 1:
		flat := make([]int, n)
		groups = make([][]int, n)
		for i := range groups {
			flat[i] = i
			groups[i] = flat[i : i+1]
		}
	case arity == n:
		g := make([]int, n)
		for i := range g {
			g[i] = i
		}
		groups = [][]int{g}
	case n <= exhaustiveLimit && n <= 20:
		groups = groupExhaustive(m, arity, ws, isSym)
	default:
		groups = groupGreedy(m, arity, ws, isSym)
	}
	normalizeGroups(groups)
	return groups, nil
}

// normalizeGroups sorts members within each group and groups by their
// smallest member.
func normalizeGroups(groups [][]int) {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
}

// IntraGroupVolume returns the total symmetrized volume kept inside the
// groups — the objective GroupProcesses maximises.
func IntraGroupVolume(m *comm.Matrix, groups [][]int) float64 {
	var total float64
	for _, g := range groups {
		for x := 0; x < len(g); x++ {
			for y := x + 1; y < len(g); y++ {
				total += m.At(g[x], g[y]) + m.At(g[y], g[x])
			}
		}
	}
	return total
}

// groupExhaustive finds the optimal partition by dynamic programming
// over subsets: dp[mask] is the best intra-group volume achievable when
// partitioning exactly the entities in mask into groups of size arity.
//
// The candidate-group weights are memoised up front: weight[mask] is
// the symmetrized intra-volume of mask, built incrementally as
// weight(sub|low) = weight(sub) + one row of pair weights — O(2^n * n)
// once, instead of an O(n^2) rescan per DP candidate. The subset
// enumeration walks combinations in workspace buffers and allocates
// nothing per call.
func groupExhaustive(m *comm.Matrix, arity int, ws *mapWorkspace, isSym bool) [][]int {
	n := m.Order() // caller guarantees n <= 20
	sym := m
	if !isSym {
		sym = m.SymmetrizedInto(ws.sym)
	}
	full := 1<<uint(n) - 1

	weight := growFloats(&ws.weight, full+1)
	weight[0] = 0
	for mask := 1; mask <= full; mask++ {
		low := mask & -mask
		rest := mask &^ low
		row := sym.RowView(bits.TrailingZeros(uint(mask)))
		w := weight[rest]
		for t := rest; t != 0; t &= t - 1 {
			w += row[bits.TrailingZeros(uint(t))]
		}
		weight[mask] = w
	}

	dp := growFloats(&ws.dp, full+1)
	choice := growInts(&ws.choice, full+1)
	for i := range dp {
		dp[i] = math.Inf(-1)
	}
	dp[0] = 0

	size := arity - 1 // caller guarantees 1 < arity < n, so size >= 1
	pos := growInts(&ws.pos, n)
	idx := growInts(&ws.idx, size)

	// Enumerate masks in increasing order; only masks whose popcount is
	// a multiple of arity are reachable. Each mask anchors on its lowest
	// set bit so no group arrangement is enumerated twice.
	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask))%arity != 0 {
			continue
		}
		low := mask & -mask
		rest := mask &^ low
		np := 0
		for t := rest; t != 0; t &= t - 1 {
			pos[np] = bits.TrailingZeros(uint(t))
			np++
		}
		if np < size {
			continue
		}
		// Walk the size-combinations of pos in place.
		for i := 0; i < size; i++ {
			idx[i] = i
		}
		for {
			sub := 0
			for _, k := range idx[:size] {
				sub |= 1 << uint(pos[k])
			}
			g := sub | low
			if prev := dp[mask&^g]; !math.IsInf(prev, -1) {
				if cand := prev + weight[g]; cand > dp[mask] {
					dp[mask] = cand
					choice[mask] = g
				}
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == np-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}

	flat := make([]int, 0, n)
	groups := make([][]int, 0, n/arity)
	for mask := full; mask != 0; {
		g := choice[mask]
		start := len(flat)
		for t := g; t != 0; t &= t - 1 {
			flat = append(flat, bits.TrailingZeros(uint(t)))
		}
		groups = append(groups, flat[start:])
		mask &^= g
	}
	return groups
}

// forEachSubsetOfSize calls fn with every subset of mask having exactly
// size bits set. It is the reference form of the combination walk that
// groupExhaustive inlines over workspace buffers (the inline copy
// avoids the per-call position/index allocations and the closure).
func forEachSubsetOfSize(mask, size int, fn func(int)) {
	if size == 0 {
		fn(0)
		return
	}
	var pos []int
	for i := mask; i != 0; i &= i - 1 {
		pos = append(pos, bits.TrailingZeros(uint(i)))
	}
	if len(pos) < size {
		return
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := 0
		for _, k := range idx {
			sub |= 1 << uint(pos[k])
		}
		fn(sub)
		i := size - 1
		for i >= 0 && idx[i] == len(pos)-size+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// groupGreedy builds groups around the heaviest communicating pairs and
// grows each group by repeatedly adding the unassigned entity with the
// strongest connection to the group.
//
// The engine is incremental: affinity[k] holds the volume between k and
// the current group's members, updated in O(n) per admitted member
// instead of rescanning every candidate against every member. Seeds
// come from a lazily-popped max-heap of the nonzero pairs — heapify is
// O(#nonzero) and only the pairs actually consumed pay the log cost,
// against sorting the full pair list up front.
func groupGreedy(m *comm.Matrix, arity int, ws *mapWorkspace, isSym bool) [][]int {
	n := m.Order()
	sym := m
	if !isSym {
		sym = m.SymmetrizedInto(ws.sym)
	}
	assigned := growBools(&ws.assigned, n)
	clear(assigned)
	aff := growFloats(&ws.affinity, n)
	// cand lists the still-unassigned entities in increasing order; the
	// selection pass compacts it in place, so late groups scan only the
	// remaining candidates instead of all n entities every time.
	cand := growInts(&ws.cand, n)
	for i := range cand {
		cand[i] = i
	}

	heap := ws.pairs[:0]
	for i := 0; i < n; i++ {
		row := sym.RowView(i)
		for j := i + 1; j < n; j++ {
			if v := row[j]; v > 0 {
				heap = append(heap, comm.Pair{I: i, J: j, Volume: v})
			}
		}
	}
	ws.pairs = heap // keep the grown backing array for the next call
	heapifyPairs(heap)

	flat := make([]int, 0, n)
	groups := make([][]int, 0, n/arity)
	remaining := n
	for remaining > 0 {
		start := len(flat)
		// Seed with the heaviest fully-unassigned pair.
		for len(heap) > 0 {
			var pr comm.Pair
			pr, heap = popPair(heap)
			if !assigned[pr.I] && !assigned[pr.J] {
				flat = append(flat, pr.I, pr.J)
				assigned[pr.I], assigned[pr.J] = true, true
				break
			}
		}
		if len(flat) == start {
			// No communicating pair left: seed with the lowest
			// unassigned entity.
			for i := 0; i < n; i++ {
				if !assigned[i] {
					flat = append(flat, i)
					assigned[i] = true
					break
				}
			}
		}
		g := flat[start:]
		clear(aff)
		for _, e := range g {
			row := sym.RowView(e)
			for k, v := range row {
				aff[k] += v
			}
		}
		// Grow to the target size. Each selection pass compacts cand,
		// dropping entities assigned since the last pass; the ascending
		// scan keeps the lowest index as tie-winner, like the full scan
		// it replaces.
		for len(g) < arity {
			best, bestVol := -1, math.Inf(-1)
			w := 0
			for _, k := range cand {
				if assigned[k] {
					continue
				}
				cand[w] = k
				w++
				if aff[k] > bestVol {
					best, bestVol = k, aff[k]
				}
			}
			cand = cand[:w]
			flat = append(flat, best)
			g = flat[start:]
			assigned[best] = true
			row := sym.RowView(best)
			for k, v := range row {
				aff[k] += v
			}
		}
		remaining -= len(g)
		groups = append(groups, g)
	}
	return groups
}
