package treematch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"orwlplace/internal/comm"
)

// GroupProcesses partitions the m.Order() entities into groups of size
// arity, maximising the communication volume kept inside groups
// (function GroupProcesses of Algorithm 1). The order must be divisible
// by arity. For at most exhaustiveLimit entities an optimal exponential
// algorithm runs; beyond that a greedy engine is used, as in the paper
// ("depending on the problem size, we go from an optimal but exponential
// algorithm to a greedy one").
//
// Groups are returned with members in increasing order and the group
// list sorted by smallest member, so results are deterministic.
func GroupProcesses(m *comm.Matrix, arity, exhaustiveLimit int) ([][]int, error) {
	n := m.Order()
	if arity < 1 {
		return nil, fmt.Errorf("treematch: arity %d < 1", arity)
	}
	if n%arity != 0 {
		return nil, fmt.Errorf("treematch: %d entities not divisible by arity %d", n, arity)
	}
	var groups [][]int
	switch {
	case arity == 1:
		groups = make([][]int, n)
		for i := range groups {
			groups[i] = []int{i}
		}
	case arity == n:
		g := make([]int, n)
		for i := range g {
			g[i] = i
		}
		groups = [][]int{g}
	case n <= exhaustiveLimit && n <= 20:
		groups = groupExhaustive(m, arity)
	default:
		groups = groupGreedy(m, arity)
	}
	normalizeGroups(groups)
	return groups, nil
}

// normalizeGroups sorts members within each group and groups by their
// smallest member.
func normalizeGroups(groups [][]int) {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
}

// IntraGroupVolume returns the total symmetrized volume kept inside the
// groups — the objective GroupProcesses maximises.
func IntraGroupVolume(m *comm.Matrix, groups [][]int) float64 {
	var total float64
	for _, g := range groups {
		for x := 0; x < len(g); x++ {
			for y := x + 1; y < len(g); y++ {
				total += m.At(g[x], g[y]) + m.At(g[y], g[x])
			}
		}
	}
	return total
}

// groupExhaustive finds the optimal partition by dynamic programming
// over subsets: dp[mask] is the best intra-group volume achievable when
// partitioning exactly the entities in mask into groups of size arity.
func groupExhaustive(m *comm.Matrix, arity int) [][]int {
	n := m.Order()
	full := (1 << uint(n)) - 1
	dp := make([]float64, full+1)
	choice := make([]int, full+1) // the group removed from mask
	for i := range dp {
		dp[i] = math.Inf(-1)
	}
	dp[0] = 0

	groupWeight := func(mask int) float64 {
		var w float64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					w += m.At(i, j) + m.At(j, i)
				}
			}
		}
		return w
	}

	// Enumerate masks in increasing order; only masks whose popcount is
	// a multiple of arity are reachable.
	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask))%arity != 0 {
			continue
		}
		// Anchor on the lowest set bit to avoid enumerating each group
		// arrangement more than once.
		low := mask & -mask
		rest := mask &^ low
		// Enumerate (arity-1)-subsets of rest.
		forEachSubsetOfSize(rest, arity-1, func(sub int) {
			g := sub | low
			prev := dp[mask&^g]
			if math.IsInf(prev, -1) {
				return
			}
			cand := prev + groupWeight(g)
			if cand > dp[mask] {
				dp[mask] = cand
				choice[mask] = g
			}
		})
	}

	var groups [][]int
	for mask := full; mask != 0; {
		g := choice[mask]
		var members []int
		for i := 0; i < n; i++ {
			if g&(1<<uint(i)) != 0 {
				members = append(members, i)
			}
		}
		groups = append(groups, members)
		mask &^= g
	}
	return groups
}

// forEachSubsetOfSize calls fn with every subset of mask having exactly
// size bits set.
func forEachSubsetOfSize(mask, size int, fn func(int)) {
	if size == 0 {
		fn(0)
		return
	}
	// Collect the set bit positions once, then walk combinations.
	var pos []int
	for i := mask; i != 0; i &= i - 1 {
		pos = append(pos, bits.TrailingZeros(uint(i)))
	}
	if len(pos) < size {
		return
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := 0
		for _, k := range idx {
			sub |= 1 << uint(pos[k])
		}
		fn(sub)
		// Next combination.
		i := size - 1
		for i >= 0 && idx[i] == len(pos)-size+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// groupGreedy builds groups around the heaviest communicating pairs and
// grows each group by repeatedly adding the unassigned entity with the
// strongest connection to the group.
func groupGreedy(m *comm.Matrix, arity int) [][]int {
	n := m.Order()
	assigned := make([]bool, n)
	pairs := m.HeaviestPairs(0)
	var groups [][]int
	pairIdx := 0
	remaining := n
	for remaining > 0 {
		// Seed with the heaviest fully-unassigned pair.
		var g []int
		for ; pairIdx < len(pairs); pairIdx++ {
			pr := pairs[pairIdx]
			if !assigned[pr.I] && !assigned[pr.J] {
				g = append(g, pr.I, pr.J)
				assigned[pr.I], assigned[pr.J] = true, true
				break
			}
		}
		if len(g) == 0 {
			// No communicating pair left: seed with the lowest
			// unassigned entity.
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g = append(g, i)
					assigned[i] = true
					break
				}
			}
		}
		// Grow to the target size.
		for len(g) < arity {
			best, bestVol := -1, math.Inf(-1)
			for k := 0; k < n; k++ {
				if assigned[k] {
					continue
				}
				var vol float64
				for _, e := range g {
					vol += m.At(k, e) + m.At(e, k)
				}
				if vol > bestVol {
					best, bestVol = k, vol
				}
			}
			g = append(g, best)
			assigned[best] = true
		}
		remaining -= len(g)
		groups = append(groups, g)
	}
	return groups
}
