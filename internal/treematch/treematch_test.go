package treematch

import (
	"testing"
	"testing/quick"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

func TestGroupProcessesValidation(t *testing.T) {
	m := comm.NewMatrix(4)
	if _, err := GroupProcesses(m, 0, 12); err == nil {
		t.Error("accepted arity 0")
	}
	if _, err := GroupProcesses(m, 3, 12); err == nil {
		t.Error("accepted non-divisible arity")
	}
}

func TestGroupProcessesTrivialArities(t *testing.T) {
	m := comm.Random(4, 10, 1)
	g1, err := GroupProcesses(m, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 4 || len(g1[0]) != 1 {
		t.Errorf("arity-1 groups = %v", g1)
	}
	gn, err := GroupProcesses(m, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(gn) != 1 || len(gn[0]) != 4 {
		t.Errorf("arity-n groups = %v", gn)
	}
}

func TestGroupProcessesFindsClusters(t *testing.T) {
	// 8 entities in 4 obvious pairs: (0,1), (2,3), (4,5), (6,7).
	m := comm.NewMatrix(8)
	for i := 0; i < 8; i += 2 {
		m.AddSym(i, i+1, 100)
	}
	m.AddSym(0, 7, 1) // noise
	for _, engine := range []struct {
		name  string
		limit int
	}{{"exhaustive", 12}, {"greedy", 1}} {
		groups, err := GroupProcesses(m, 2, engine.limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) != 4 {
			t.Fatalf("%s: %d groups", engine.name, len(groups))
		}
		for _, g := range groups {
			if g[1] != g[0]+1 || g[0]%2 != 0 {
				t.Errorf("%s: unexpected group %v", engine.name, g)
			}
		}
	}
}

func TestExhaustiveAtLeastAsGoodAsGreedy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := comm.Random(8, 100, seed)
		opt, err := GroupProcesses(m, 2, 12)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GroupProcesses(m, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		vOpt := IntraGroupVolume(m, opt)
		vGreedy := IntraGroupVolume(m, greedy)
		if vOpt < vGreedy-1e-9 {
			t.Errorf("seed %d: exhaustive %g < greedy %g", seed, vOpt, vGreedy)
		}
	}
}

func TestExhaustiveOptimalSmallCase(t *testing.T) {
	// 4 entities, arity 2. Weights chosen so the greedy heaviest-pair
	// choice (0,1)=10 forces (2,3)=1, total 11, while the optimal
	// pairing (0,2)+(1,3) = 9+8 = 17.
	m := comm.NewMatrix(4)
	m.AddSym(0, 1, 10)
	m.AddSym(0, 2, 9)
	m.AddSym(1, 3, 8)
	m.AddSym(2, 3, 1)
	groups, err := GroupProcesses(m, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := IntraGroupVolume(m, groups); got != 2*(9+8) {
		t.Errorf("exhaustive volume = %g, want %g (groups %v)", got, 2.0*(9+8), groups)
	}
	greedy, err := GroupProcesses(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := IntraGroupVolume(m, greedy); got != 2*(10+1) {
		t.Errorf("greedy volume = %g, want %g (groups %v)", got, 2.0*(10+1), greedy)
	}
}

func TestGroupsAreDeterministicAndNormalized(t *testing.T) {
	m := comm.Random(12, 50, 7)
	a, _ := GroupProcesses(m, 3, 1)
	b, _ := GroupProcesses(m, 3, 1)
	if len(a) != len(b) {
		t.Fatal("non-deterministic group count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("non-deterministic group sizes")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("non-deterministic groups")
			}
		}
		for j := 1; j < len(a[i]); j++ {
			if a[i][j-1] >= a[i][j] {
				t.Errorf("group %v not sorted", a[i])
			}
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1][0] >= a[i][0] {
			t.Error("groups not ordered by smallest member")
		}
	}
}

// Property: every grouping is a partition — all entities exactly once.
func TestGroupProcessesPartitionProperty(t *testing.T) {
	f := func(seed int64, arityPick uint8) bool {
		arities := []int{2, 3, 4, 6}
		a := arities[int(arityPick)%len(arities)]
		m := comm.Random(12, 100, seed)
		groups, err := GroupProcesses(m, a, 6) // mixes engines by size
		if err != nil {
			return false
		}
		seen := make([]bool, 12)
		for _, g := range groups {
			if len(g) != a {
				return false
			}
			for _, e := range g {
				if e < 0 || e >= 12 || seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMapRejectsEmptyMatrix(t *testing.T) {
	if _, err := Map(topology.TinyFlat(), comm.NewMatrix(0), Options{}); err == nil {
		t.Error("accepted empty matrix")
	}
}

func TestMapPipelineOnTinyFlat(t *testing.T) {
	// 8 tasks in a pipeline on 2 NUMA x 4 cores: the mapping must keep
	// consecutive tasks together, cutting the chain at most once across
	// NUMA nodes.
	top := topology.TinyFlat()
	m := comm.Ring(8, 1000, false)
	mp, err := Map(top, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.ComputePU) != 8 {
		t.Fatalf("placed %d entities", len(mp.ComputePU))
	}
	cost, err := Cost(top, m, mp.ComputePU)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal for a chain: 3 links at distance 2 (same NUMA), 3 links
	// at distance 2, 1 link across NUMA (distance 6 in this tree:
	// core->l2? arities...). Just require it beats scatter placement.
	scatter, _ := Place(top, 8, StrategyScatter)
	scCost, _ := Cost(top, m, scatter)
	if cost >= scCost {
		t.Errorf("treematch cost %g >= scatter cost %g", cost, scCost)
	}
	crossTM, _ := CrossNUMAVolume(top, m, mp.ComputePU)
	crossSC, _ := CrossNUMAVolume(top, m, scatter)
	if crossTM > crossSC {
		t.Errorf("treematch cross-NUMA %g > scatter %g", crossTM, crossSC)
	}
	// A chain of 8 split over two 4-core nodes crosses NUMA on exactly
	// one link when mapped optimally.
	if crossTM > 2000 {
		t.Errorf("cross-NUMA volume = %g, want at most one cut link (2000)", crossTM)
	}
}

func TestMapClusteredMatchesNUMANodes(t *testing.T) {
	// Two heavy clusters of 4 on a 2-NUMA machine: each cluster must
	// land entirely on one NUMA node.
	top := topology.TinyFlat()
	m := comm.Clustered(8, 2, 1000, 1)
	mp, err := Map(top, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	nodeOf := func(ent int) *topology.Object {
		return pus[mp.ComputePU[ent]].AncestorOfType(topology.NUMANode)
	}
	for c := 0; c < 2; c++ {
		base := nodeOf(c * 4)
		for e := c * 4; e < (c+1)*4; e++ {
			if nodeOf(e) != base {
				t.Errorf("cluster %d split across NUMA nodes", c)
			}
		}
	}
	if nodeOf(0) == nodeOf(4) {
		t.Error("both clusters on the same NUMA node")
	}
}

func TestMapHyperthreadControlMode(t *testing.T) {
	top := topology.TinyHT() // 4 cores, 8 PUs, hyperthreaded
	m := comm.Ring(4, 100, true)
	mp, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Mode != ControlHyperthread {
		t.Fatalf("mode = %v, want hyperthread-sibling", mp.Mode)
	}
	pus := top.PUs()
	for e := 0; e < 4; e++ {
		cpu := mp.ComputePU[e]
		ctl := mp.ControlPU[e]
		if ctl == -1 {
			t.Fatalf("entity %d control thread unmapped", e)
		}
		if pus[cpu].Parent != pus[ctl].Parent {
			t.Errorf("entity %d: compute and control not hyperthread siblings", e)
		}
		if cpu == ctl {
			t.Errorf("entity %d: compute and control share a PU", e)
		}
	}
	// Compute entities all get distinct cores.
	seen := map[int]bool{}
	for _, c := range mp.CoreOf {
		if seen[c] {
			t.Error("two compute entities share a core")
		}
		seen[c] = true
	}
}

func TestMapSpareCoreControlMode(t *testing.T) {
	// 6 tasks on an 8-core non-HT machine: 2 spare cores receive the
	// control threads of the 2 heaviest tasks (Fig. 2 behaviour).
	top := topology.TinyFlat()
	m := comm.Ring(6, 100, false)
	m.AddSym(0, 5, 500) // make tasks 0 and 5 the heaviest
	mp, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Mode != ControlSpareCores {
		t.Fatalf("mode = %v, want spare-cores", mp.Mode)
	}
	mapped := 0
	usedCores := map[int]bool{}
	for _, c := range mp.CoreOf {
		usedCores[c] = true
	}
	for e, ctl := range mp.ControlPU {
		if ctl == -1 {
			continue
		}
		mapped++
		ctlCore := top.PUs()[ctl].AncestorOfType(topology.Core).LogicalIndex
		if usedCores[ctlCore] {
			t.Errorf("entity %d control thread shares core %d with a compute thread", e, ctlCore)
		}
	}
	if mapped != 2 {
		t.Errorf("%d control threads mapped, want 2", mapped)
	}
	if mp.ControlPU[0] == -1 || mp.ControlPU[5] == -1 {
		t.Error("heaviest tasks 0 and 5 should get mapped control threads")
	}
}

func TestMapExactFitHasNoControlMapping(t *testing.T) {
	top := topology.TinyFlat()
	m := comm.Ring(8, 100, false)
	mp, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Mode != ControlNone {
		t.Fatalf("mode = %v, want none (no spare capacity)", mp.Mode)
	}
	for e, ctl := range mp.ControlPU {
		if ctl != -1 {
			t.Errorf("entity %d has control PU %d on a full machine", e, ctl)
		}
	}
}

func TestMapOversubscription(t *testing.T) {
	// 16 tasks on 8 cores: a virtual level is added; each core carries
	// exactly two tasks and heavy pairs share a core.
	top := topology.TinyFlat()
	m := comm.NewMatrix(16)
	for i := 0; i < 16; i += 2 {
		m.AddSym(i, i+1, 1000)
	}
	mp, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Oversubscribed {
		t.Fatal("mapping should be oversubscribed")
	}
	if mp.Mode != ControlNone {
		t.Error("oversubscribed mapping cannot reserve control resources")
	}
	perCore := map[int]int{}
	for _, c := range mp.CoreOf {
		perCore[c]++
	}
	for c, cnt := range perCore {
		if cnt != 2 {
			t.Errorf("core %d carries %d tasks, want 2", c, cnt)
		}
	}
	for i := 0; i < 16; i += 2 {
		if mp.CoreOf[i] != mp.CoreOf[i+1] {
			t.Errorf("heavy pair (%d,%d) split across cores %d and %d",
				i, i+1, mp.CoreOf[i], mp.CoreOf[i+1])
		}
	}
}

func TestMapSingleEntity(t *testing.T) {
	top := topology.TinyHT()
	m := comm.NewMatrix(1)
	mp, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.ComputePU) != 1 {
		t.Fatalf("placed %d", len(mp.ComputePU))
	}
	if mp.Mode != ControlHyperthread {
		t.Errorf("mode = %v", mp.Mode)
	}
}

func TestMapOnPaperMachines(t *testing.T) {
	// Smoke test at paper scale: the 30-task tracking-like DFG on both
	// testbed topologies.
	m := comm.Ring(30, 1<<20, false)
	for _, top := range []*topology.Topology{topology.SMP12E5(), topology.SMP20E7()} {
		mp, err := Map(top, m, Options{ControlThreads: true})
		if err != nil {
			t.Fatalf("%s: %v", top.Attrs.Name, err)
		}
		seenCore := map[int]bool{}
		for _, c := range mp.CoreOf {
			if seenCore[c] {
				t.Fatalf("%s: core reuse without oversubscription", top.Attrs.Name)
			}
			seenCore[c] = true
		}
		tmCost, _ := Cost(top, m, mp.ComputePU)
		sc, _ := Place(top, 30, StrategyScatter)
		scCost, _ := Cost(top, m, sc)
		if tmCost >= scCost {
			t.Errorf("%s: treematch %g not better than scatter %g", top.Attrs.Name, tmCost, scCost)
		}
	}
}

func TestPUSet(t *testing.T) {
	top := topology.TinyFlat()
	mp, err := Map(top, comm.Ring(4, 10, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mp.PUSet().Len(); got != 4 {
		t.Errorf("PUSet size = %d, want 4", got)
	}
}

func TestPlaceStrategies(t *testing.T) {
	top := topology.TinyHT() // 2 NUMA x 2 cores x 2 PUs
	pus := top.PUs()

	compact, err := Place(top, 4, StrategyCompact)
	if err != nil {
		t.Fatal(err)
	}
	// Compact uses PUs 0,1,2,3: first two cores, HT siblings filled.
	if pus[compact[0]].Parent != pus[compact[1]].Parent {
		t.Error("compact should fill hyperthread siblings first")
	}

	cores, err := Place(top, 4, StrategyCompactCores)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*topology.Object]bool{}
	for _, p := range cores {
		core := pus[p].Parent
		if seen[core] {
			t.Error("compact-cores reused a core before wrapping")
		}
		seen[core] = true
	}

	scatter, err := Place(top, 2, StrategyScatter)
	if err != nil {
		t.Fatal(err)
	}
	n0 := pus[scatter[0]].AncestorOfType(topology.NUMANode)
	n1 := pus[scatter[1]].AncestorOfType(topology.NUMANode)
	if n0 == n1 {
		t.Error("scatter should spread across NUMA nodes")
	}

	rr, err := Place(top, 3, StrategyRoundRobinPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr) != 3 {
		t.Fatal("round-robin length wrong")
	}

	if _, err := Place(top, -1, StrategyCompact); err == nil {
		t.Error("accepted negative count")
	}
	if _, err := Place(top, 2, Strategy(99)); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestPlaceWrapsWhenOversubscribed(t *testing.T) {
	top := topology.TinyFlat() // 8 PUs
	for _, s := range []Strategy{StrategyCompact, StrategyCompactCores, StrategyScatter, StrategyRoundRobinPU} {
		pl, err := Place(top, 20, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i, p := range pl {
			if p < 0 || p >= top.NumPUs() {
				t.Fatalf("%v: entity %d -> invalid PU %d", s, i, p)
			}
		}
	}
}

func TestCostValidation(t *testing.T) {
	top := topology.TinyFlat()
	m := comm.Ring(4, 10, false)
	if _, err := Cost(top, m, []int{0, 1}); err == nil {
		t.Error("accepted short placement")
	}
	if _, err := Cost(top, m, []int{0, 1, 2, 99}); err == nil {
		t.Error("accepted invalid PU index")
	}
	if _, err := CrossNUMAVolume(top, m, []int{0}); err == nil {
		t.Error("CrossNUMAVolume accepted short placement")
	}
}

func TestControlModeAndStrategyStrings(t *testing.T) {
	if ControlHyperthread.String() != "hyperthread-sibling" {
		t.Error("control mode name wrong")
	}
	if ControlMode(9).String() == "" || Strategy(9).String() == "" {
		t.Error("out-of-range strings should not be empty")
	}
	if StrategyScatter.String() != "scatter" {
		t.Error("strategy name wrong")
	}
}

// Property: Map always produces valid PU indexes and, without
// oversubscription, at most one compute entity per core.
func TestMapValidityProperty(t *testing.T) {
	top := topology.TinyFlat()
	f := func(seed int64, sz uint8) bool {
		n := 1 + int(sz)%8
		m := comm.Random(n, 100, seed)
		mp, err := Map(top, m, Options{ControlThreads: seed%2 == 0})
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, pu := range mp.ComputePU {
			if pu < 0 || pu >= top.NumPUs() {
				return false
			}
			if seen[pu] {
				return false
			}
			seen[pu] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: on a clustered matrix, the TreeMatch cost never exceeds the
// cost of the oblivious strategies.
func TestMapBeatsObliviousOnClusteredProperty(t *testing.T) {
	top := topology.TinyFlat()
	f := func(seed int64) bool {
		m := comm.Clustered(8, 2, 1000, 1)
		// Permute entities so clusters are not index-contiguous.
		perm := permFromSeed(seed, 8)
		pm, err := m.Permuted(perm)
		if err != nil {
			return false
		}
		mp, err := Map(top, pm, Options{})
		if err != nil {
			return false
		}
		tm, err := Cost(top, pm, mp.ComputePU)
		if err != nil {
			return false
		}
		for _, s := range []Strategy{StrategyCompactCores, StrategyScatter} {
			pl, err := Place(top, 8, s)
			if err != nil {
				return false
			}
			c, err := Cost(top, pm, pl)
			if err != nil {
				return false
			}
			if tm > c+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func permFromSeed(seed int64, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	x := uint64(seed)*2654435761 + 1
	for i := n - 1; i > 0; i-- {
		x = x*6364136223846793005 + 1442695040888963407
		j := int(x % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
