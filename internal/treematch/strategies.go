package treematch

import (
	"fmt"

	"orwlplace/internal/topology"
)

// Strategy names a topology-oblivious placement policy, matching the
// OpenMP/MKL environment settings compared against in the paper
// (OMP_PROC_BIND=close/spread, KMP_AFFINITY=compact/scatter).
type Strategy int

const (
	// StrategyCompact fills PUs in logical order: hyperthread siblings
	// first, then the next core, like KMP_AFFINITY=compact.
	StrategyCompact Strategy = iota
	// StrategyCompactCores fills one PU per core in core order, like
	// OMP_PLACES=cores with OMP_PROC_BIND=close.
	StrategyCompactCores
	// StrategyScatter round-robins entities over NUMA nodes (then over
	// cores inside each node), like KMP_AFFINITY=scatter or
	// OMP_PROC_BIND=spread.
	StrategyScatter
	// StrategyRoundRobinPU round-robins over all PUs ignoring the
	// core/NUMA structure entirely.
	StrategyRoundRobinPU
)

var strategyNames = [...]string{
	StrategyCompact:      "compact",
	StrategyCompactCores: "compact-cores",
	StrategyScatter:      "scatter",
	StrategyRoundRobinPU: "round-robin-pu",
}

// String names the strategy.
func (s Strategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
	return strategyNames[s]
}

// Place binds n entities to PUs following the strategy, wrapping around
// when n exceeds the available resources. The result has the same form
// as Mapping.ComputePU: entity index -> logical PU index.
func Place(top *topology.Topology, n int, s Strategy) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("treematch: negative entity count %d", n)
	}
	out := make([]int, n)
	switch s {
	case StrategyCompact:
		pus := top.PUs()
		for i := 0; i < n; i++ {
			out[i] = pus[i%len(pus)].LogicalIndex
		}
	case StrategyCompactCores:
		cores := top.Cores()
		for i := 0; i < n; i++ {
			core := cores[i%len(cores)]
			// Wrap onto hyperthread siblings once all cores are used.
			slot := (i / len(cores)) % len(core.Children)
			out[i] = core.Children[slot].LogicalIndex
		}
	case StrategyScatter:
		nodes := top.Objects(topology.NUMANode)
		if len(nodes) == 0 {
			nodes = []*topology.Object{top.Root}
		}
		// Round-robin across NUMA nodes; within a node, fill one PU per
		// core first.
		perNode := make([][]*topology.Object, len(nodes))
		for ni, node := range nodes {
			pus := node.PUs()
			// Reorder so that slot-0 PUs of every core come first.
			var first, rest []*topology.Object
			for _, pu := range pus {
				if pu.Parent.Children[0] == pu {
					first = append(first, pu)
				} else {
					rest = append(rest, pu)
				}
			}
			perNode[ni] = append(first, rest...)
		}
		counts := make([]int, len(nodes))
		for i := 0; i < n; i++ {
			ni := i % len(nodes)
			pus := perNode[ni]
			out[i] = pus[counts[ni]%len(pus)].LogicalIndex
			counts[ni]++
		}
	case StrategyRoundRobinPU:
		pus := top.PUs()
		stride := len(pus)/n + 1
		if n >= len(pus) {
			stride = 1
		}
		for i := 0; i < n; i++ {
			out[i] = pus[(i*stride)%len(pus)].LogicalIndex
		}
	default:
		return nil, fmt.Errorf("treematch: unknown strategy %v", s)
	}
	return out, nil
}
