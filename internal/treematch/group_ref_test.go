package treematch

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"orwlplace/internal/comm"
)

// Reference implementations of the grouping engines as they existed
// before the incremental rewrite, kept verbatim so the golden quality
// tests below can prove the optimized engines lose no intra-group
// volume. refGroupGreedy rescans every unassigned entity against every
// group member (O(n * |g|) per admission) seeded from the fully sorted
// pair list; refGroupExhaustive recomputes the group weight from
// scratch for every DP candidate.

func refGroupGreedy(m *comm.Matrix, arity int) [][]int {
	n := m.Order()
	assigned := make([]bool, n)
	pairs := m.HeaviestPairs(0)
	var groups [][]int
	pairIdx := 0
	remaining := n
	for remaining > 0 {
		var g []int
		for ; pairIdx < len(pairs); pairIdx++ {
			pr := pairs[pairIdx]
			if !assigned[pr.I] && !assigned[pr.J] {
				g = append(g, pr.I, pr.J)
				assigned[pr.I], assigned[pr.J] = true, true
				break
			}
		}
		if len(g) == 0 {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g = append(g, i)
					assigned[i] = true
					break
				}
			}
		}
		for len(g) < arity {
			best, bestVol := -1, math.Inf(-1)
			for k := 0; k < n; k++ {
				if assigned[k] {
					continue
				}
				var vol float64
				for _, e := range g {
					vol += m.At(k, e) + m.At(e, k)
				}
				if vol > bestVol {
					best, bestVol = k, vol
				}
			}
			g = append(g, best)
			assigned[best] = true
		}
		remaining -= len(g)
		groups = append(groups, g)
	}
	normalizeGroups(groups)
	return groups
}

func refGroupExhaustive(m *comm.Matrix, arity int) [][]int {
	n := m.Order()
	full := (1 << uint(n)) - 1
	dp := make([]float64, full+1)
	choice := make([]int, full+1)
	for i := range dp {
		dp[i] = math.Inf(-1)
	}
	dp[0] = 0

	groupWeight := func(mask int) float64 {
		var w float64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					w += m.At(i, j) + m.At(j, i)
				}
			}
		}
		return w
	}

	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask))%arity != 0 {
			continue
		}
		low := mask & -mask
		rest := mask &^ low
		forEachSubsetOfSize(rest, arity-1, func(sub int) {
			g := sub | low
			prev := dp[mask&^g]
			if math.IsInf(prev, -1) {
				return
			}
			cand := prev + groupWeight(g)
			if cand > dp[mask] {
				dp[mask] = cand
				choice[mask] = g
			}
		})
	}

	var groups [][]int
	for mask := full; mask != 0; {
		g := choice[mask]
		var members []int
		for i := 0; i < n; i++ {
			if g&(1<<uint(i)) != 0 {
				members = append(members, i)
			}
		}
		groups = append(groups, members)
		mask &^= g
	}
	normalizeGroups(groups)
	return groups
}

// intRandom returns a random symmetric matrix with non-negative
// integer entries. Integer volumes keep every partial sum exact in
// float64, so "identical volume" assertions are not at the mercy of
// summation order.
func intRandom(n int, max int, seed int64) *comm.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := comm.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(rng.Intn(max + 1))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// goldenCorpus is the seeded matrix set both golden tests sweep:
// random, clustered and stencil communication structures at several
// sizes.
func goldenCorpus(n int) []*comm.Matrix {
	ms := []*comm.Matrix{
		comm.Clustered(n, 2, 1000, 1),
		comm.Ring(n, 1<<12, true),
	}
	for seed := int64(1); seed <= 8; seed++ {
		ms = append(ms, intRandom(n, 1000, seed))
	}
	if bx := n / 4; bx >= 2 {
		ms = append(ms, comm.Stencil2D(bx, 4, 1<<10, 1<<8))
	}
	return ms
}

// Golden quality: the incremental greedy engine must achieve at least
// the intra-group volume of the reference engine on every corpus
// matrix. (It is in fact engineered to make the identical choices —
// same seed order, same affinity values, same tie-breaks — so the
// volumes should be exactly equal; the assertion only demands "no
// worse" to stay robust if either engine is ever tuned further.)
func TestGoldenGreedyNoVolumeLoss(t *testing.T) {
	for _, n := range []int{16, 24, 48} {
		for _, arity := range []int{2, 4, 8} {
			if n%arity != 0 {
				continue
			}
			for mi, m := range goldenCorpus(n) {
				got, err := GroupProcesses(m, arity, 1) // force greedy
				if err != nil {
					t.Fatal(err)
				}
				ref := refGroupGreedy(m, arity)
				gotVol := IntraGroupVolume(m, got)
				refVol := IntraGroupVolume(m, ref)
				if gotVol < refVol {
					t.Errorf("n=%d arity=%d matrix#%d: incremental greedy volume %g < reference %g",
						n, arity, mi, gotVol, refVol)
				}
			}
		}
	}
}

// The incremental greedy is designed to be decision-identical to the
// reference: check the groups themselves on a sample, not just the
// volume.
func TestGoldenGreedyIdenticalGroups(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		m := intRandom(24, 500, seed)
		got, err := GroupProcesses(m, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := refGroupGreedy(m, 4)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d groups, reference %d", seed, len(got), len(ref))
		}
		for gi := range got {
			for x := range got[gi] {
				if got[gi][x] != ref[gi][x] {
					t.Fatalf("seed %d: group %d = %v, reference %v", seed, gi, got[gi], ref[gi])
				}
			}
		}
	}
}

// Golden quality: the memoized exhaustive DP must produce partitions
// with exactly the volume of the naive DP — both are optimal, so any
// difference is a bug in the weight memoisation.
func TestGoldenExhaustiveIdenticalVolume(t *testing.T) {
	for _, cfg := range []struct{ n, arity int }{
		{8, 2}, {8, 4}, {12, 2}, {12, 3}, {12, 4}, {12, 6}, {14, 7}, {15, 3},
	} {
		for mi, m := range goldenCorpus(cfg.n)[:6] { // clustered, ring, 4 randoms
			got, err := GroupProcesses(m, cfg.arity, 20)
			if err != nil {
				t.Fatal(err)
			}
			ref := refGroupExhaustive(m, cfg.arity)
			gotVol := IntraGroupVolume(m, got)
			refVol := IntraGroupVolume(m, ref)
			if gotVol != refVol {
				t.Errorf("n=%d arity=%d matrix#%d: memoized DP volume %g != naive DP %g",
					cfg.n, cfg.arity, mi, gotVol, refVol)
			}
		}
	}
}
