package treematch

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// Grouping-engine benches at the sizes the mapping pipeline actually
// sees: the greedy engine on a machine-scale matrix, the exhaustive DP
// at its default size limit. Run with -benchmem — the engines draw all
// scratch from the pooled workspace, so steady-state allocations are
// just the returned group slices.

func BenchmarkGroupGreedy160(b *testing.B) {
	m := comm.Ring(160, 1<<20, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupProcesses(m, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupGreedyClustered96(b *testing.B) {
	m := comm.Clustered(96, 12, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupProcesses(m, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupExhaustive12(b *testing.B) {
	m := comm.Random(12, 1000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupProcesses(m, 3, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// Full Map on the big testbed — the same configuration as the root
// BenchmarkTreeMatchMap/160tasks-160cores target, benchable in-package.
func BenchmarkMapRing160(b *testing.B) {
	top := topology.SMP20E7()
	m := comm.Ring(160, 1<<20, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(top, m, Options{ControlThreads: true}); err != nil {
			b.Fatal(err)
		}
	}
}
