package treematch

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// Cost evaluates a placement: the sum over entity pairs of the
// symmetrized communication volume weighted by the hop distance between
// their PUs in the topology tree. Lower is better; it is the objective
// TreeMatch minimises.
func Cost(top *topology.Topology, m *comm.Matrix, computePU []int) (float64, error) {
	if len(computePU) != m.Order() {
		return 0, fmt.Errorf("treematch: placement for %d entities, matrix order %d",
			len(computePU), m.Order())
	}
	pus := top.PUs()
	for i, pu := range computePU {
		if pu < 0 || pu >= len(pus) {
			return 0, fmt.Errorf("treematch: entity %d bound to invalid PU %d", i, pu)
		}
	}
	var total float64
	for i := 0; i < m.Order(); i++ {
		for j := i + 1; j < m.Order(); j++ {
			v := m.At(i, j) + m.At(j, i)
			if v == 0 {
				continue
			}
			total += v * float64(topology.HopDistance(pus[computePU[i]], pus[computePU[j]]))
		}
	}
	return total, nil
}

// CrossNUMAVolume returns the symmetrized volume exchanged between
// entities placed on different NUMA nodes — the quantity the affinity
// module is designed to shrink.
func CrossNUMAVolume(top *topology.Topology, m *comm.Matrix, computePU []int) (float64, error) {
	if len(computePU) != m.Order() {
		return 0, fmt.Errorf("treematch: placement for %d entities, matrix order %d",
			len(computePU), m.Order())
	}
	pus := top.PUs()
	var total float64
	for i := 0; i < m.Order(); i++ {
		for j := i + 1; j < m.Order(); j++ {
			v := m.At(i, j) + m.At(j, i)
			if v == 0 {
				continue
			}
			if topology.LocalityOf(pus[computePU[i]], pus[computePU[j]]) > topology.SameL3 {
				total += v
			}
		}
	}
	return total, nil
}
