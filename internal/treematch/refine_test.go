package treematch

import (
	"testing"
	"testing/quick"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

func TestRefineSwapFixesGreedyTrap(t *testing.T) {
	// The adversarial case of TestExhaustiveOptimalSmallCase: greedy
	// pairs (0,1)+(2,3) for volume 22; one swap reaches the optimum
	// (0,2)+(1,3) with volume 34.
	m := comm.NewMatrix(4)
	m.AddSym(0, 1, 10)
	m.AddSym(0, 2, 9)
	m.AddSym(1, 3, 8)
	m.AddSym(2, 3, 1)
	greedy, err := GroupProcesses(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if IntraGroupVolume(m, greedy) != 2*(10+1) {
		t.Fatalf("unexpected greedy volume %g", IntraGroupVolume(m, greedy))
	}
	refined := RefineSwap(m, greedy, 10)
	if got := IntraGroupVolume(m, refined); got != 2*(9+8) {
		t.Errorf("refined volume = %g, want %g", got, 2.0*(9+8))
	}
}

func TestRefineSwapDoesNotModifyInput(t *testing.T) {
	m := comm.Random(8, 100, 3)
	groups, _ := GroupProcesses(m, 2, 1)
	snapshot := make([][]int, len(groups))
	for i, g := range groups {
		snapshot[i] = append([]int(nil), g...)
	}
	_ = RefineSwap(m, groups, 5)
	for i := range groups {
		for j := range groups[i] {
			if groups[i][j] != snapshot[i][j] {
				t.Fatal("RefineSwap mutated its input")
			}
		}
	}
}

func TestRefineSwapZeroRoundsIsIdentity(t *testing.T) {
	m := comm.Random(6, 50, 1)
	groups, _ := GroupProcesses(m, 3, 1)
	refined := RefineSwap(m, groups, 0)
	if IntraGroupVolume(m, refined) != IntraGroupVolume(m, groups) {
		t.Error("zero rounds changed the grouping quality")
	}
}

// Property: refinement never reduces intra-group volume and always
// returns a valid partition.
func TestRefineSwapMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := comm.Random(9, 100, seed)
		groups, err := GroupProcesses(m, 3, 1)
		if err != nil {
			return false
		}
		refined := RefineSwap(m, groups, 8)
		if IntraGroupVolume(m, refined) < IntraGroupVolume(m, groups)-1e-9 {
			return false
		}
		seen := make([]bool, 9)
		for _, g := range refined {
			if len(g) != 3 {
				return false
			}
			for _, e := range g {
				if e < 0 || e >= 9 || seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: refinement closes part of the gap to the exhaustive
// optimum — refined greedy is never worse than plain greedy and never
// better than optimal.
func TestRefineBoundedByOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := comm.Random(8, 100, seed)
		opt, err := GroupProcesses(m, 2, 12)
		if err != nil {
			return false
		}
		greedy, err := GroupProcesses(m, 2, 1)
		if err != nil {
			return false
		}
		refined := RefineSwap(m, greedy, 16)
		vOpt := IntraGroupVolume(m, opt)
		vRef := IntraGroupVolume(m, refined)
		vGreedy := IntraGroupVolume(m, greedy)
		return vGreedy-1e-9 <= vRef && vRef <= vOpt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapWithRefinement(t *testing.T) {
	top := topology.SMP12E5()
	m := comm.Random(64, 1<<20, 11)
	plain, err := Map(top, m, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Map(top, m, Options{ControlThreads: true, RefineRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	cPlain, err := Cost(top, m, plain.ComputePU)
	if err != nil {
		t.Fatal(err)
	}
	cRef, err := Cost(top, m, refined.ComputePU)
	if err != nil {
		t.Fatal(err)
	}
	if cRef > cPlain+1e-6 {
		t.Errorf("refined mapping cost %g worse than plain %g", cRef, cPlain)
	}
}
