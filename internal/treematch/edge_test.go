package treematch

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// Edge-case coverage for the mapping algorithm.

func singleCoreMachine() *topology.Topology {
	return topology.MustBuild(topology.Spec{
		Name: "uni", NUMAPerGroup: 1, SocketsPerNUMA: 1,
		CoresPerSocket: 1, PUsPerCore: 1,
		MemoryPerNUMA: 1 << 30,
	})
}

func TestMapOnSingleCoreMachine(t *testing.T) {
	top := singleCoreMachine()
	mp, err := Map(top, comm.NewMatrix(1), Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if mp.ComputePU[0] != 0 {
		t.Errorf("entity on PU %d", mp.ComputePU[0])
	}
	// Several entities on one core: heavy oversubscription.
	mp, err = Map(top, comm.Ring(5, 10, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Oversubscribed {
		t.Error("expected oversubscription")
	}
	for _, pu := range mp.ComputePU {
		if pu != 0 {
			t.Errorf("entity escaped the single PU: %d", pu)
		}
	}
}

func TestMapHugeOversubscription(t *testing.T) {
	top := topology.TinyFlat() // 8 cores
	m := comm.Clustered(64, 8, 100, 1)
	mp, err := Map(top, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perCore := map[int]int{}
	for _, c := range mp.CoreOf {
		perCore[c]++
	}
	for c, n := range perCore {
		if n != 8 {
			t.Errorf("core %d carries %d entities, want 8", c, n)
		}
	}
	// The 8 clusters of 8 should land one per core.
	for cl := 0; cl < 8; cl++ {
		base := mp.CoreOf[cl*8]
		for e := cl * 8; e < (cl+1)*8; e++ {
			if mp.CoreOf[e] != base {
				t.Errorf("cluster %d split across cores", cl)
			}
		}
	}
}

func TestMapZeroMatrixIsStillValid(t *testing.T) {
	// Entities that never communicate must still be placed one per
	// core.
	top := topology.TinyFlat()
	mp, err := Map(top, comm.NewMatrix(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, pu := range mp.ComputePU {
		if seen[pu] {
			t.Fatal("PU reused")
		}
		seen[pu] = true
	}
}

func TestMapAsymmetricMatrixSymmetrizes(t *testing.T) {
	// Only one direction carries volume: mapping must still cluster the
	// pair.
	top := topology.TinyFlat()
	m := comm.NewMatrix(4)
	m.Set(0, 3, 1e6) // one-way
	mp, err := Map(top, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pus := top.PUs()
	l0 := pus[mp.ComputePU[0]].AncestorOfType(topology.NUMANode)
	l3 := pus[mp.ComputePU[3]].AncestorOfType(topology.NUMANode)
	if l0 != l3 {
		t.Error("one-way heavy pair split across NUMA nodes")
	}
}

func TestHeaviestTasksOrdering(t *testing.T) {
	m := comm.NewMatrix(4)
	m.AddSym(0, 1, 10)
	m.AddSym(2, 3, 100)
	got := heaviestTasks(m.Symmetrized(), 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("heaviest = %v, want [2 3]", got)
	}
	if got := heaviestTasks(m, 10); len(got) != 4 {
		t.Errorf("over-count should clamp: %v", got)
	}
}

func TestCoreAritiesFallback(t *testing.T) {
	top := singleCoreMachine()
	ar := coreArities(top)
	prod := 1
	for _, a := range ar {
		prod *= a
	}
	if prod != 1 {
		t.Errorf("arities %v product %d, want 1", ar, prod)
	}
}

func TestForEachSubsetOfSize(t *testing.T) {
	var got []int
	forEachSubsetOfSize(0b1011, 2, func(s int) { got = append(got, s) })
	want := map[int]bool{0b0011: true, 0b1001: true, 0b1010: true}
	if len(got) != len(want) {
		t.Fatalf("subsets = %d, want %d", len(got), len(want))
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected subset %b", s)
		}
	}
	// size 0 yields the empty subset once.
	count := 0
	forEachSubsetOfSize(0b111, 0, func(s int) {
		count++
		if s != 0 {
			t.Errorf("empty subset = %b", s)
		}
	})
	if count != 1 {
		t.Errorf("empty subset visited %d times", count)
	}
	// size larger than popcount yields nothing.
	forEachSubsetOfSize(0b11, 3, func(int) { t.Error("impossible subset visited") })
}

func TestMapControlVolumeFractionInfluence(t *testing.T) {
	// With a huge control fraction the control entities attract their
	// tasks; with a tiny one mapping is dominated by task-task volume.
	// Either way the mapping must stay valid.
	top := topology.TinyFlat()
	m := comm.Ring(6, 100, false)
	for _, frac := range []float64{0.001, 0.5, 5} {
		mp, err := Map(top, m, Options{ControlThreads: true, ControlVolumeFraction: frac})
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if mp.Mode != ControlSpareCores {
			t.Errorf("frac %g: mode %v", frac, mp.Mode)
		}
	}
}

func TestMapZeroVolumeControlStillPlaced(t *testing.T) {
	// Tasks with zero communication get control entities with the
	// minimum pull volume; mapping must not fail.
	top := topology.TinyFlat()
	mp, err := Map(top, comm.NewMatrix(6), Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	ctl := 0
	for _, pu := range mp.ControlPU {
		if pu >= 0 {
			ctl++
		}
	}
	if ctl != 2 {
		t.Errorf("control placements = %d, want 2", ctl)
	}
}
