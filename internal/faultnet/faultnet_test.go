package faultnet

import (
	"net"
	"testing"
	"time"
)

// pipeConn builds a connected TCP pair on the loopback so the wrapped
// side exercises real socket semantics (Close mid-write, EOF).
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestDropSwallowsWritesDeterministically(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(Plan{Seed: seed, DropProb: 0.5})
		client, server := pipeConn(t)
		fc := in.Conn(client)
		var pattern []bool
		buf := make([]byte, 16)
		for i := 0; i < 20; i++ {
			if _, err := fc.Write([]byte("0123456789abcdef")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, _ := server.Read(buf)
			pattern = append(pattern, n > 0)
		}
		dropped, _, _, _ := in.Counters()
		if dropped == 0 {
			t.Fatal("a 0.5 drop probability fired zero times in 20 writes")
		}
		return pattern
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at write %d: %v vs %v", i, a, b)
		}
	}
}

func TestSeverAfterWrites(t *testing.T) {
	in := New(Plan{Seed: 1, SeverAfterWrites: 3})
	client, _ := pipeConn(t)
	fc := in.Conn(client)
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte("x")); err != nil {
			t.Fatalf("write %d severed early: %v", i, err)
		}
	}
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write 4 should have severed the connection")
	}
	if _, _, _, severed := in.Counters(); severed != 1 {
		t.Fatalf("severed counter = %d, want 1", severed)
	}
	// The underlying socket is really closed: the next write errors too.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("severed connection accepted a write")
	}
}

func TestTruncateDeliversPrefixThenEOF(t *testing.T) {
	in := New(Plan{Seed: 3, TruncateProb: 1})
	client, server := pipeConn(t)
	fc := in.Conn(client)
	payload := []byte("a long enough frame to truncate meaningfully")
	n, err := fc.Write(payload)
	if err == nil {
		t.Fatal("truncating write should report an error")
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("truncated %d of %d bytes, want a strict prefix", n, len(payload))
	}
	// The peer reads the prefix, then EOF.
	buf := make([]byte, len(payload))
	server.SetReadDeadline(time.Now().Add(time.Second))
	got := 0
	for {
		k, rerr := server.Read(buf[got:])
		got += k
		if rerr != nil {
			break
		}
	}
	if got != n {
		t.Fatalf("peer read %d bytes, truncation delivered %d", got, n)
	}
}

func TestDialFuncWrapsConnections(t *testing.T) {
	in := New(Plan{Seed: 5, SeverAfterWrites: 1})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	dial := in.DialFunc(nil)
	conn, err := dial(t.Context(), "tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("second write should sever (SeverAfterWrites: 1)")
	}
}
