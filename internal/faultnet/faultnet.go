// Package faultnet injects deterministic network faults — dropped
// writes, delays, truncation, severed connections — into net.Conn
// streams, so chaos tests can prove the transport's retry/resubscribe
// machinery recovers from the failures production will eventually see.
//
// Faults fire from a seeded schedule: every connection derives its own
// random stream from (plan seed, connection index), so a test that
// found a bug replays it exactly. The package knows nothing about the
// wire protocol above it; it plugs into orwlnet through the
// server-side net.Listener seam and the client-side WithDialFunc seam.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is one deterministic fault schedule. Probabilities are per
// Write call; the zero value injects nothing.
type Plan struct {
	// Seed derives every connection's random stream. Two injectors
	// with the same Seed fault identically.
	Seed int64
	// DropProb is the probability a Write is silently swallowed whole
	// (frame-aligned loss: orwlnet hands the writer complete frames).
	DropProb float64
	// DelayProb is the probability a Write stalls for Delay first.
	DelayProb float64
	Delay     time.Duration
	// TruncateProb is the probability a Write delivers only a prefix
	// and then severs the connection — the mid-frame crash case the
	// reader must resynchronise from by reconnecting.
	TruncateProb float64
	// SeverAfterWrites, when positive, hard-closes each connection
	// after that many Write calls — a deterministic "daemon died
	// mid-conversation" on every connection.
	SeverAfterWrites int
}

// Injector builds fault-wrapped connections from a Plan.
type Injector struct {
	plan Plan
	// connSeq numbers the connections this injector has wrapped; the
	// index salts each connection's random stream.
	connSeq atomic.Int64

	// Counters for test assertions: faults actually fired.
	dropped   atomic.Uint64
	delayed   atomic.Uint64
	truncated atomic.Uint64
	severed   atomic.Uint64
}

// New builds an injector applying plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Counters reports how many faults have fired: writes dropped,
// delayed, truncated, and connections severed.
func (in *Injector) Counters() (dropped, delayed, truncated, severed uint64) {
	return in.dropped.Load(), in.delayed.Load(), in.truncated.Load(), in.severed.Load()
}

// Conn wraps one connection with the injector's fault schedule.
func (in *Injector) Conn(c net.Conn) net.Conn {
	idx := in.connSeq.Add(1)
	return &faultConn{
		Conn: c,
		in:   in,
		rng:  rand.New(rand.NewSource(in.plan.Seed ^ int64(uint64(idx)*0x9e3779b97f4a7c15))),
	}
}

// Listener wraps a listener so every accepted connection faults under
// the injector's plan — the server-side seam.
func (in *Injector) Listener(lis net.Listener) net.Listener {
	return &faultListener{Listener: lis, in: in}
}

// DialFunc wraps a dial function so every dialed connection faults
// under the injector's plan — the client-side seam (orwlnet's
// WithDialFunc accepts exactly this shape).
func (in *Injector) DialFunc(dial func(ctx context.Context, network, addr string) (net.Conn, error)) func(ctx context.Context, network, addr string) (net.Conn, error) {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := dial(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// faultConn applies the plan to outbound writes. Faulting the write
// side only keeps the model simple and is fully general for tests:
// wrap the client dialer to corrupt requests, the server listener to
// corrupt responses.
type faultConn struct {
	net.Conn
	in *Injector

	// mu serialises Write faults so the rng stream and write counter
	// stay deterministic even when the caller writes concurrently.
	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	dead   bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, fmt.Errorf("faultnet: connection severed by plan")
	}
	plan := &c.in.plan
	c.writes++
	if plan.SeverAfterWrites > 0 && c.writes > plan.SeverAfterWrites {
		c.dead = true
		c.in.severed.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("faultnet: connection severed after %d writes", plan.SeverAfterWrites)
	}
	if plan.TruncateProb > 0 && c.rng.Float64() < plan.TruncateProb {
		// Deliver a strict prefix, then kill the connection: the peer
		// sees a torn frame followed by EOF.
		n := 0
		if len(p) > 1 {
			n = 1 + c.rng.Intn(len(p)-1)
		}
		if n > 0 {
			c.Conn.Write(p[:n])
		}
		c.dead = true
		c.in.truncated.Add(1)
		c.Conn.Close()
		return n, fmt.Errorf("faultnet: write truncated to %d of %d bytes", n, len(p))
	}
	if plan.DropProb > 0 && c.rng.Float64() < plan.DropProb {
		// Swallowed whole: the caller believes the bytes left, the peer
		// never sees them. orwlnet's framing makes this frame-aligned
		// loss, which deadline/retry logic must absorb.
		c.in.dropped.Add(1)
		return len(p), nil
	}
	if plan.DelayProb > 0 && c.rng.Float64() < plan.DelayProb {
		c.in.delayed.Add(1)
		delay := plan.Delay
		c.mu.Unlock()
		time.Sleep(delay)
		c.mu.Lock()
		if c.dead {
			return 0, fmt.Errorf("faultnet: connection severed by plan")
		}
	}
	return c.Conn.Write(p)
}
