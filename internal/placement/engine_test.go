package placement

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	want := []string{"treematch", "compact", "compact-cores", "scatter", "round-robin-pu", "none"}
	if len(names) < len(want) {
		t.Fatalf("registry has %d strategies, want >= %d", len(names), len(want))
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("registry missing %q", n)
		}
		if _, ok := Lookup(n); !ok {
			t.Errorf("Lookup(%q) failed", n)
		}
	}
	for _, n := range ObliviousNames() {
		s, _ := Lookup(n)
		if s.CommAware() {
			t.Errorf("oblivious list contains comm-aware %q", n)
		}
		if n == None {
			t.Error("oblivious list contains the unbound baseline")
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("accepted nil strategy")
	}
	if err := Register(&noneStrategy{}); err == nil {
		t.Error("accepted duplicate name")
	}
}

func TestComputeCacheHitMiss(t *testing.T) {
	eng, err := NewEngine(topology.Fig2Machine())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.Ring(8, 1<<16, true)

	a1, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first compute: %+v", st)
	}

	// The same matrix again: a hit, and an identical assignment.
	a2, err := eng.Compute(TreeMatch, m.Clone(), 0, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat compute: %+v", st)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("cached assignment differs:\n%+v\n%+v", a1, a2)
	}

	// A different matrix, different options and a different strategy
	// each miss.
	if _, err := eng.Compute(TreeMatch, comm.Ring(8, 1<<10, true), 0, Options{ControlThreads: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute(TreeMatch, m, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute("scatter", m, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("after distinct computes: %+v", st)
	}
}

func TestObliviousStrategiesIgnoreMatrix(t *testing.T) {
	eng, err := NewEngine(topology.TinyHT())
	if err != nil {
		t.Fatal(err)
	}
	// Two different matrices of the same order share the cache entry
	// for a matrix-oblivious strategy.
	if _, err := eng.Compute("compact", comm.Ring(4, 100, true), 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute("compact", comm.Uniform(4, 7), 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want one hit one miss", st)
	}
	// A nil matrix with an explicit entity count also works.
	if _, err := eng.Compute("compact", nil, 4, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 2 {
		t.Fatalf("stats = %+v, want second hit", st)
	}
}

func TestOptionsCanonicalizedInCacheKey(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.Ring(4, 100, true)
	if _, err := eng.Compute(TreeMatch, m, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	// Spelled-out defaults are the same configuration: a hit.
	if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlVolumeFraction: 0.1, ExhaustiveLimit: 12}); err != nil {
		t.Fatal(err)
	}
	// Oblivious strategies ignore the options entirely: one entry.
	if _, err := eng.Compute("scatter", m, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute("scatter", m, 0, Options{ControlThreads: true}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want default-equivalent and options-insensitive hits", st)
	}
	if eng.TopologySignature() != Signature(eng.Topology()) {
		t.Error("cached topology signature disagrees with Signature()")
	}
}

func TestCachedAssignmentIsIsolated(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.Ring(4, 100, true)
	a1, err := eng.Compute(TreeMatch, m, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a1.ComputePU[0] = -999 // caller scribbles on its copy
	a2, err := eng.Compute(TreeMatch, m, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a2.ComputePU[0] == -999 {
		t.Error("mutation leaked into the cache")
	}
}

func TestNoneStrategyUnbound(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Compute(None, nil, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Unbound || len(a.ComputePU) != 0 {
		t.Fatalf("none assignment = %+v", a)
	}
	if a.Mapping(eng.Topology()) != nil {
		t.Error("unbound assignment has a mapping")
	}
	pl := eng.SimPlacement(a, 7)
	if pl.Dynamic == nil || pl.Dynamic.Seed != 7 {
		t.Errorf("unbound SimPlacement = %+v, want dynamic policy", pl)
	}

	prog := orwl.MustProgram(4, "m")
	if err := eng.Bind(prog, a); err != nil {
		t.Fatal(err)
	}
	if prog.Binding() != nil {
		t.Error("unbound assignment produced bindings")
	}
}

func TestBindCommitsAssignment(t *testing.T) {
	top := topology.TinyHT()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Compute(TreeMatch, comm.Ring(4, 100, true), 0, Options{ControlThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	prog := orwl.MustProgram(4, "m")
	if err := eng.Bind(prog, a); err != nil {
		t.Fatal(err)
	}
	b := prog.Binding()
	if len(b) != 4 {
		t.Fatalf("binding = %v", b)
	}
	for task, pu := range b {
		if pu != a.ComputePU[task] {
			t.Errorf("task %d bound to %d, assignment says %d", task, pu, a.ComputePU[task])
		}
	}
	// TinyHT reserves hyperthread siblings for control threads.
	if cb := prog.ControlBinding(); len(cb) != 4 {
		t.Errorf("control binding = %v", cb)
	}

	pl := eng.SimPlacement(a, 0)
	if pl.Dynamic != nil || !pl.LocalAlloc || len(pl.ComputePU) != 4 {
		t.Errorf("bound SimPlacement = %+v", pl)
	}
}

func TestCacheEviction(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat(), WithCacheEntries(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 4} {
		if _, err := eng.Compute("compact", nil, n, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// The oldest key (n=2) was evicted; recomputing it misses.
	if _, err := eng.Compute("compact", nil, 2, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 4 misses", st)
	}
	// n=4 is still resident.
	if _, err := eng.Compute("compact", nil, 4, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want a hit on the resident key", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat(), WithCacheEntries(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Compute("compact", nil, 4, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want no caching", st)
	}
}

func TestComputeValidation(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compute("no-such-strategy", nil, 4, Options{}); err == nil {
		t.Error("accepted unknown strategy")
	}
	if _, err := eng.Compute(TreeMatch, nil, 4, Options{}); err == nil {
		t.Error("treematch accepted nil matrix")
	}
	if _, err := eng.Compute("compact", nil, 0, Options{}); err == nil {
		t.Error("accepted zero entities with nil matrix")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("accepted nil topology")
	}
}

func TestSignature(t *testing.T) {
	if Signature(topology.SMP12E5()) != Signature(topology.SMP12E5()) {
		t.Error("identical machines hash differently")
	}
	if Signature(topology.SMP12E5()) == Signature(topology.SMP20E7()) {
		t.Error("different machines hash alike")
	}
	restricted, err := topology.Restrict(topology.SMP12E5(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if Signature(topology.SMP12E5()) == Signature(restricted) {
		t.Error("restricted machine hashes like its parent")
	}
}

func TestPlaceFullPipeline(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	prog := orwl.MustProgram(4, "main")
	err = prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("main", 128); err != nil {
			return err
		}
		h := orwl.NewHandle()
		if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "main"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "main"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.PlaceProgram(prog, TreeMatch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Binding()) != 4 {
		t.Errorf("binding = %v", prog.Binding())
	}
	if a.Strategy != TreeMatch {
		t.Errorf("strategy = %q", a.Strategy)
	}
}

// gateStrategy counts its Map invocations and blocks each one until
// release is closed, so a test can pile up concurrent Compute calls on
// one uncached key.
type gateStrategy struct {
	name    string
	calls   atomic.Int64
	started chan struct{} // receives one token per Map entry
	release chan struct{}
}

func (g *gateStrategy) Name() string    { return g.name }
func (g *gateStrategy) CommAware() bool { return false }

func (g *gateStrategy) Map(top *topology.Topology, _ *comm.Matrix, n int, _ Options) (*Assignment, error) {
	g.calls.Add(1)
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	pus := make([]int, n)
	for i := range pus {
		pus[i] = i % top.NumPUs()
	}
	return &Assignment{Strategy: g.name, ComputePU: pus}, nil
}

// Concurrent Compute calls for the same uncached key must run the
// strategy exactly once: the first caller computes, the rest coalesce
// onto the in-flight call (singleflight). Run with -race.
func TestComputeSingleflight(t *testing.T) {
	gate := &gateStrategy{
		name:    "test-singleflight",
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	MustRegister(gate)
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	results := make([]*Assignment, callers)
	hits := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, hit, err := eng.ComputeWithInfo(gate.name, nil, 4, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
			hits[i] = hit
		}(i)
	}
	<-gate.started // the leader is inside Map
	// Give the other goroutines a moment to park on the flight call;
	// any that arrive after completion hit the cache instead — either
	// way the strategy must not run again.
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	if got := gate.calls.Load(); got != 1 {
		t.Fatalf("strategy ran %d times for one key, want exactly 1", got)
	}
	leaders := 0
	for i, a := range results {
		if a == nil {
			t.Fatal("missing result")
		}
		if !hits[i] {
			leaders++
		}
		if !reflect.DeepEqual(a.ComputePU, results[0].ComputePU) {
			t.Fatalf("caller %d got a different assignment", i)
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers reported a miss, want exactly the leader", leaders)
	}
	// Results are private clones: mutating one must not corrupt another
	// caller's copy or the cache.
	results[0].ComputePU[0] = 99
	if results[1].ComputePU[0] == 99 {
		t.Error("followers share the leader's slice")
	}
	a, hit, err := eng.ComputeWithInfo(gate.name, nil, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("expected a cache hit after the flight completed")
	}
	if a.ComputePU[0] == 99 {
		t.Error("cache entry was corrupted by a caller mutation")
	}
}

// A failing in-flight compute must propagate its error to every waiter
// and leave nothing cached.
func TestComputeSingleflightError(t *testing.T) {
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// n = 0 entities: every strategy rejects the request.
			_, _, err := eng.ComputeWithInfo("compact", nil, 0, Options{})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d: expected an error", i)
		}
	}
	if st := eng.Stats(); st.Entries != 0 {
		t.Errorf("failed computes left %d cache entries", st.Entries)
	}
}

// panicStrategy panics inside Map after signalling entry, so the test
// can park a follower on the in-flight call first.
type panicStrategy struct {
	started chan struct{}
	release chan struct{}
}

func (p *panicStrategy) Name() string    { return "test-panic" }
func (p *panicStrategy) CommAware() bool { return false }

func (p *panicStrategy) Map(*topology.Topology, *comm.Matrix, int, Options) (*Assignment, error) {
	select {
	case p.started <- struct{}{}:
	default:
	}
	<-p.release
	panic("strategy exploded")
}

// A panicking strategy must resolve the in-flight call: parked
// followers get an error instead of deadlocking, the panic propagates
// to the leader, and the key recomputes on the next call.
func TestComputeSingleflightPanic(t *testing.T) {
	ps := &panicStrategy{started: make(chan struct{}, 1), release: make(chan struct{})}
	MustRegister(ps)
	eng, err := NewEngine(topology.TinyFlat())
	if err != nil {
		t.Fatal(err)
	}

	leaderPanicked := make(chan bool, 1)
	go func() {
		defer func() { leaderPanicked <- recover() != nil }()
		eng.Compute(ps.Name(), nil, 2, Options{})
	}()
	<-ps.started
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := eng.ComputeWithInfo(ps.Name(), nil, 2, Options{})
		followerErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the follower park on the flight
	close(ps.release)

	if !<-leaderPanicked {
		t.Error("leader should observe the strategy panic")
	}
	select {
	case err := <-followerErr:
		if err == nil {
			t.Error("follower should get an error from the panicked flight")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower deadlocked on a panicked flight")
	}
	// The key is not poisoned: a later call runs the strategy again
	// (and panics again, proving the flight entry was cleared).
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		eng.Compute(ps.Name(), nil, 2, Options{})
		return
	}()
	if !panicked {
		t.Error("flight entry not cleared: second call did not reach the strategy")
	}
}
