package placement

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

func newTestFleet(t *testing.T) *MultiService {
	t.Helper()
	fleet := NewMultiService()
	if err := fleet.AddMachine("tinyht", topology.TinyHT()); err != nil {
		t.Fatal(err)
	}
	if err := fleet.AddMachine("tinyflat", topology.TinyFlat()); err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestMultiServiceRouting(t *testing.T) {
	fleet := newTestFleet(t)
	ctx := context.Background()

	if got := fleet.DefaultMachine(); got != "tinyht" {
		t.Errorf("default machine = %q, want the first registered", got)
	}
	if got := fleet.Machines(); len(got) != 2 || got[0] != "tinyht" || got[1] != "tinyflat" {
		t.Errorf("machines = %v", got)
	}

	// An unnamed request — the shape of every v1 request — routes to
	// the default machine.
	resp, err := fleet.Place(ctx, &PlaceRequest{Version: 1, Strategy: TreeMatch, Matrix: testMatrix(t, 4, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "tinyht" {
		t.Errorf("unnamed request served by %q, want default tinyht", resp.Machine)
	}

	// A named request routes to its machine.
	resp, err = fleet.Place(ctx, &PlaceRequest{Machine: "tinyflat", Strategy: TreeMatch, Matrix: testMatrix(t, 4, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "tinyflat" {
		t.Errorf("named request served by %q", resp.Machine)
	}

	// An unknown machine fails loudly.
	if _, err := fleet.Place(ctx, &PlaceRequest{Machine: "smp99", Strategy: TreeMatch, Entities: 2}); err == nil ||
		!strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("unknown machine accepted (err = %v)", err)
	}

	// Per-machine engines are independent: the same matrix misses on
	// each machine once, so the fleet-wide counters show two misses.
	st, err := fleet.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Places != 2 || st.Cache.Misses != 2 {
		t.Errorf("aggregate stats = %+v, want 2 places / 2 misses", st)
	}
	if st.TopologyName != "TinyHT" {
		t.Errorf("stats report machine %q, want the default's topology", st.TopologyName)
	}
	if len(st.Machines) != 2 || st.Machines[0] != "tinyht" {
		t.Errorf("stats machines = %v", st.Machines)
	}

	per, err := fleet.MachineStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if per["tinyht"].Places != 1 || per["tinyflat"].Places != 1 {
		t.Errorf("per-machine stats = %+v", per)
	}
}

func TestMultiServiceConstruction(t *testing.T) {
	fleet := NewMultiService()
	if err := fleet.AddMachine("", topology.TinyHT()); err == nil {
		t.Error("unnamed machine accepted")
	}
	if err := fleet.AddEngine("x", nil); err == nil {
		t.Error("nil engine accepted")
	}
	if err := fleet.AddMachine("m", topology.TinyHT()); err != nil {
		t.Fatal(err)
	}
	if err := fleet.AddMachine("m", topology.TinyFlat()); err == nil {
		t.Error("duplicate machine name accepted")
	}
	if err := fleet.SetDefault("nope"); err == nil {
		t.Error("unknown default accepted")
	}
	if _, err := fleet.Place(context.Background(), nil); err == nil {
		t.Error("nil request accepted")
	}

	// An empty fleet reports its emptiness instead of panicking.
	empty := NewMultiService()
	if _, err := empty.Place(context.Background(), &PlaceRequest{Strategy: TreeMatch, Entities: 2}); err == nil {
		t.Error("empty fleet served a request")
	}
	if _, err := empty.Topology(context.Background()); err == nil {
		t.Error("empty fleet returned a topology")
	}
}

func TestMultiServiceSetDefault(t *testing.T) {
	fleet := newTestFleet(t)
	if err := fleet.SetDefault("tinyflat"); err != nil {
		t.Fatal(err)
	}
	if got := fleet.Machines(); got[0] != "tinyflat" {
		t.Errorf("machines after SetDefault = %v, want tinyflat first", got)
	}
	resp, err := fleet.Place(context.Background(), &PlaceRequest{Strategy: TreeMatch, Matrix: testMatrix(t, 4, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "tinyflat" {
		t.Errorf("unnamed request served by %q after SetDefault", resp.Machine)
	}
	top, err := fleet.Topology(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if top.Attrs.Name != "TinyFlat" {
		t.Errorf("fleet topology = %q, want the new default's", top.Attrs.Name)
	}
}

func TestMultiServicePlaceBatch(t *testing.T) {
	fleet := newTestFleet(t)
	ctx := context.Background()
	mat := testMatrix(t, 4, 100)

	reqs := []*PlaceRequest{
		{Machine: "tinyht", Strategy: TreeMatch, Matrix: mat},
		{Machine: "tinyflat", Strategy: TreeMatch, Matrix: mat},
		{Strategy: TreeMatch, Matrix: mat},                     // default machine
		{Machine: "missing", Strategy: TreeMatch, Matrix: mat}, // slot error
		{Machine: "tinyht", Strategy: "nope", Entities: 2},     // slot error
		nil, // slot error, must not void the batch
	}
	resps, err := fleet.PlaceBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("batch answered %d slots for %d requests", len(resps), len(reqs))
	}
	for i, want := range []string{"tinyht", "tinyflat", "tinyht"} {
		if resps[i].Err != "" || resps[i].Assignment == nil || resps[i].Machine != want {
			t.Errorf("slot %d = %+v, want assignment from %q", i, resps[i], want)
		}
	}
	for i := 3; i < len(reqs); i++ {
		if resps[i].Err == "" || resps[i].Assignment != nil {
			t.Errorf("bad slot %d answered %+v, want a per-slot error", i, resps[i])
		}
	}

	// The default-machine slot and the named tinyht slot share a cache
	// key, so tinyht computed the matrix once.
	per, err := fleet.MachineStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st := per["tinyht"]; st.Cache.Misses != 1 {
		t.Errorf("tinyht misses = %d, want 1 (identical slots coalesce)", st.Cache.Misses)
	}
}

// TestMultiServicePlaceBatchConcurrent hammers PlaceBatch from many
// goroutines with mixed machines and a mix of recurring (cache-hit)
// and per-worker (cache-miss) matrices — the -race deployment shape of
// a fleet daemon under burst load.
func TestMultiServicePlaceBatchConcurrent(t *testing.T) {
	fleet := newTestFleet(t)
	ctx := context.Background()
	shared := testMatrix(t, 4, 100)

	const workers = 8
	const batches = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				// One shared slot per machine (hits after the first
				// compute) plus one distinct-order slot (misses).
				reqs := []*PlaceRequest{
					{Machine: "tinyht", Strategy: TreeMatch, Matrix: shared},
					{Machine: "tinyflat", Strategy: TreeMatch, Matrix: shared},
					{Machine: "tinyht", Strategy: TreeMatch, Matrix: testMatrix(t, 3+(w+i)%4, 7)},
				}
				resps, err := fleet.PlaceBatch(ctx, reqs)
				if err != nil {
					errs <- err
					return
				}
				for s, resp := range resps {
					if resp.Err != "" || resp.Assignment == nil {
						t.Errorf("worker %d batch %d slot %d: %+v", w, i, s, resp)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := fleet.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(workers * batches * 3)
	if st.Places != total {
		t.Errorf("places = %d, want %d", st.Places, total)
	}
	if st.Cache.Hits+st.Cache.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != %d", st.Cache.Hits, st.Cache.Misses, total)
	}
	// 2 shared keys + 4 distinct orders on tinyht; singleflight keeps
	// duplicate computes from concurrent first touches bounded.
	if st.Cache.Misses < 6 {
		t.Errorf("misses = %d, want >= 6 distinct keys", st.Cache.Misses)
	}
}

// TestMultiServiceConcurrentAddMachine hammers a growing fleet:
// machines are registered while placements, batch placements and both
// stats views run against it — the shape of a daemon whose operator
// adds machines at runtime. Run under -race this guards the router's
// locking.
func TestMultiServiceConcurrentAddMachine(t *testing.T) {
	fleet := NewMultiService()
	if err := fleet.AddMachine("seed", topology.TinyHT()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := chainMatrixMulti(4)

	const adders = 4
	const machinesPerAdder = 8
	const readers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})

	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			<-start
			for i := 0; i < machinesPerAdder; i++ {
				name := fmt.Sprintf("m-%d-%d", a, i)
				top := topology.TinyFlat()
				if err := fleet.AddMachine(name, top); err != nil {
					t.Errorf("AddMachine(%s): %v", name, err)
					return
				}
				// Immediately exercise the new machine.
				if _, err := fleet.Place(ctx, &PlaceRequest{Machine: name, Strategy: TreeMatch, Matrix: m}); err != nil {
					t.Errorf("Place on %s: %v", name, err)
					return
				}
			}
		}(a)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				if _, err := fleet.Place(ctx, &PlaceRequest{Strategy: TreeMatch, Matrix: m}); err != nil {
					t.Errorf("default Place: %v", err)
					return
				}
				if _, err := fleet.PlaceBatch(ctx, []*PlaceRequest{
					{Strategy: TreeMatch, Matrix: m},
					{Machine: "seed", Strategy: None},
				}); err != nil {
					t.Errorf("PlaceBatch: %v", err)
					return
				}
				if _, err := fleet.Stats(ctx); err != nil {
					t.Errorf("Stats: %v", err)
					return
				}
				ms, err := fleet.MachineStats(ctx)
				if err != nil {
					t.Errorf("MachineStats: %v", err)
					return
				}
				if _, ok := ms["seed"]; !ok {
					t.Error("MachineStats lost the seed machine")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	want := 1 + adders*machinesPerAdder
	if got := len(fleet.Machines()); got != want {
		t.Errorf("fleet has %d machines, want %d", got, want)
	}
	if def := fleet.DefaultMachine(); def != "seed" {
		t.Errorf("default machine = %q, want seed", def)
	}
	ms, err := fleet.MachineStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != want {
		t.Errorf("MachineStats lists %d machines, want %d", len(ms), want)
	}
}

// chainMatrixMulti is a local pipeline matrix helper (the name avoids
// colliding with other test helpers in the package).
func chainMatrixMulti(n int) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		m.AddSym(i, i+1, float64(1+i)*100)
	}
	return m
}
