package placement

import (
	"context"
	"sync"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

func testMatrix(t *testing.T, n int, weight float64) *comm.Matrix {
	t.Helper()
	m := comm.NewMatrix(n)
	for i := 1; i < n; i++ {
		m.AddSym(i-1, i, weight)
	}
	return m
}

func newTestService(t *testing.T) *LocalService {
	t.Helper()
	eng, err := NewEngine(topology.TinyHT())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestLocalServicePlace(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	req := &PlaceRequest{Strategy: TreeMatch, Matrix: testMatrix(t, 4, 100)}

	resp, err := svc.Place(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != ServiceVersion {
		t.Errorf("response version = %d, want %d", resp.Version, ServiceVersion)
	}
	if resp.CacheHit {
		t.Error("first call reported a cache hit")
	}
	if got := resp.Assignment.Entities(); got != 4 {
		t.Errorf("assignment entities = %d, want 4", got)
	}
	if resp.Cost <= 0 {
		t.Errorf("cost = %g, want > 0 for a communicating chain", resp.Cost)
	}
	if resp.ElapsedNS < 0 {
		t.Errorf("negative latency %d", resp.ElapsedNS)
	}

	again, err := svc.Place(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("identical second request missed the cache")
	}
	if again.Cache.Hits != 1 || again.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", again.Cache)
	}

	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Places != 2 {
		t.Errorf("places = %d, want 2", st.Places)
	}
	if st.TopologyName != "TinyHT" {
		t.Errorf("topology name = %q", st.TopologyName)
	}
	if len(st.Strategies) == 0 {
		t.Error("no strategies reported")
	}
	if st.TopologySignature != Signature(topology.TinyHT()) {
		t.Error("topology signature does not match a fresh TinyHT build")
	}
}

func TestLocalServiceUnboundSkipsCost(t *testing.T) {
	svc := newTestService(t)
	resp, err := svc.Place(context.Background(), &PlaceRequest{
		Strategy: None, Matrix: testMatrix(t, 4, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Assignment.Unbound {
		t.Fatal("none strategy returned a bound assignment")
	}
	if resp.Cost != 0 || resp.CrossNUMAVolume != 0 {
		t.Errorf("unbound assignment has cost %g / cross-NUMA %g, want 0/0",
			resp.Cost, resp.CrossNUMAVolume)
	}
}

func TestLocalServiceErrors(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	if _, err := svc.Place(ctx, nil); err == nil {
		t.Error("nil request accepted")
	}
	if _, err := svc.Place(ctx, &PlaceRequest{Strategy: "nope", Entities: 2}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := svc.Place(ctx, &PlaceRequest{Version: ServiceVersion + 1, Strategy: TreeMatch, Matrix: testMatrix(t, 2, 1)}); err == nil {
		t.Error("future request version accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Place(canceled, &PlaceRequest{Strategy: TreeMatch, Matrix: testMatrix(t, 2, 1)}); err == nil {
		t.Error("canceled context accepted")
	}
	if _, err := svc.Topology(canceled); err == nil {
		t.Error("Topology with canceled context succeeded")
	}
	if _, err := svc.Stats(canceled); err == nil {
		t.Error("Stats with canceled context succeeded")
	}
	if _, err := NewLocalService(nil); err == nil {
		t.Error("nil engine accepted")
	}
}

// TestLocalServiceTopologyIsACopy is the regression test for the
// live-pointer bug: Topology used to hand out the engine's own tree,
// so an in-process caller mutating it desynchronised the cached
// topology signature from the tree and corrupted cache keying.
func TestLocalServiceTopologyIsACopy(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	before, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	top, err := svc.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if Signature(top) != before.TopologySignature {
		t.Fatal("returned topology does not fingerprint like the engine's")
	}
	// Maul the returned tree: rename it, inflate a cache, drop a child.
	top.Attrs.Name = "mutated"
	top.Root.CacheSize = 1 << 40
	top.Root.Children = top.Root.Children[:1]

	after, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.TopologySignature != before.TopologySignature {
		t.Error("mutating the returned topology changed the service's signature")
	}
	if after.TopologyName != before.TopologyName {
		t.Errorf("mutating the returned topology renamed the service's machine to %q", after.TopologyName)
	}
	if fresh, err := svc.Topology(ctx); err != nil || fresh.Attrs.Name != "TinyHT" || len(fresh.Root.Children) != 2 {
		t.Errorf("engine's own tree was reached through the copy: %+v, %v", fresh.Attrs, err)
	}
	if Signature(svc.Engine().Topology()) != before.TopologySignature {
		t.Error("engine tree no longer matches its cached signature")
	}
}

// TestServiceConcurrentPlace hammers one service from many goroutines
// alternating two distinct requests. The cache must stay consistent:
// every call is either a hit or a miss, at most a benign handful of
// duplicate misses happen (the engine computes outside its lock), and
// both distinct keys end up cached.
func TestServiceConcurrentPlace(t *testing.T) {
	svc := newTestService(t)
	ctx := context.Background()
	const workers = 8
	const callsPerWorker = 20

	reqs := []*PlaceRequest{
		{Strategy: TreeMatch, Matrix: testMatrix(t, 4, 100)},
		{Strategy: TreeMatch, Matrix: testMatrix(t, 6, 50)},
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				req := reqs[(w+i)%len(reqs)]
				resp, err := svc.Place(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if got, want := resp.Assignment.Entities(), req.Matrix.Order(); got != want {
					t.Errorf("entities = %d, want %d", got, want)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(workers * callsPerWorker)
	if st.Places != total {
		t.Errorf("places = %d, want %d", st.Places, total)
	}
	if st.Cache.Hits+st.Cache.Misses != total {
		t.Errorf("hits(%d) + misses(%d) != calls(%d)", st.Cache.Hits, st.Cache.Misses, total)
	}
	if st.Cache.Misses < uint64(len(reqs)) {
		t.Errorf("misses = %d, want >= %d distinct keys", st.Cache.Misses, len(reqs))
	}
	// Duplicate computes of one key are possible but bounded by the
	// worker count; the overwhelming majority must be hits.
	if st.Cache.Misses > uint64(len(reqs)*workers) {
		t.Errorf("misses = %d, far beyond plausible duplicate computes", st.Cache.Misses)
	}
	if st.Cache.Entries != len(reqs) {
		t.Errorf("cache entries = %d, want %d", st.Cache.Entries, len(reqs))
	}
}
