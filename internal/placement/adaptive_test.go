package placement

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
)

// phaseSource scripts a MatrixSource: it serves matrices[i] on call i,
// clamping at the last — the replayed trace of a program whose
// communication pattern shifts mid-run.
type phaseSource struct {
	matrices []*comm.Matrix
	calls    int
}

func (s *phaseSource) Name() string { return "phase-script" }

func (s *phaseSource) Matrix() (*comm.Matrix, error) {
	i := s.calls
	if i >= len(s.matrices) {
		i = len(s.matrices) - 1
	}
	s.calls++
	return s.matrices[i], nil
}

// ringMatrix is a 1D pipeline: heavy volume between index neighbours.
func ringMatrix(n int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(n)
	for i := 0; i+1 < n; i++ {
		m.AddSym(i, i+1, vol)
	}
	return m
}

// strideClusters groups {i, i+k, i+2k, ...} into all-to-all cliques —
// the worst case for a ring-optimal mapping, since clique members sit
// maximally far apart in pipeline order.
func strideClusters(n, k int, vol float64) *comm.Matrix {
	m := comm.NewMatrix(n)
	for base := 0; base < k; base++ {
		var members []int
		for i := base; i < n; i += k {
			members = append(members, i)
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				m.AddSym(members[x], members[y], vol)
			}
		}
	}
	return m
}

// adaptiveWorkload is the perfsim template the golden test models
// with: communication-dominated threads with a real working set, so
// remaps have both a measurable gain and a non-trivial cost.
func adaptiveWorkload(n int) *perfsim.Workload {
	threads := make([]perfsim.Thread, n)
	for i := range threads {
		threads[i] = perfsim.Thread{
			ComputeCycles: 1e5,
			WorkingSet:    1 << 20,
			MemoryTraffic: 1 << 14,
		}
	}
	return &perfsim.Workload{Name: "golden-shift", Threads: threads, Iterations: 1}
}

// TestAdaptiveGoldenShift is the acceptance scenario: a workload whose
// communication pattern shifts mid-run is re-placed by the
// observed-affinity loop and recovers a measurable fraction of the
// perfsim-modeled cost gap versus keeping the static initial mapping.
func TestAdaptiveGoldenShift(t *testing.T) {
	const (
		n       = 16
		vol     = 1 << 20
		horizon = 50
	)
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	phaseA := ringMatrix(n, vol)
	phaseB := strideClusters(n, 4, vol)

	// Three epochs of the declared pattern, then the shift.
	src := &phaseSource{matrices: []*comm.Matrix{phaseA, phaseA, phaseA, phaseB, phaseB}}
	rec, err := NewReconciler(eng, src, nil, AdaptiveConfig{
		Horizon:  horizon,
		Workload: adaptiveWorkload(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Prime(Fixed("declared", phaseA)); err != nil {
		t.Fatal(err)
	}
	static := rec.Current() // the mapping a non-adaptive run keeps forever

	var adoptedAt uint64
	for epoch := 1; epoch <= 5; epoch++ {
		rep, err := rec.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if epoch <= 3 {
			if rep.Recomputed || rep.Adopted {
				t.Fatalf("epoch %d: drift-free phase triggered a recompute (drift %.3f)", epoch, rep.Drift)
			}
			if rep.Drift > 0.01 {
				t.Fatalf("epoch %d: drift %.3f for an unchanged pattern", epoch, rep.Drift)
			}
		}
		if epoch == 4 {
			if !rep.Recomputed {
				t.Fatalf("epoch 4: pattern shift not detected (drift %.3f)", rep.Drift)
			}
			if !rep.Adopted {
				t.Fatalf("epoch 4: remap rejected (gain %.6fs, cost %.6fs)", rep.GainSeconds, rep.CostSeconds)
			}
			if rep.GainSeconds <= rep.CostSeconds {
				t.Fatalf("epoch 4: adopted with gain %.6fs <= cost %.6fs", rep.GainSeconds, rep.CostSeconds)
			}
			adoptedAt = rep.Epoch
		}
		if epoch == 5 && (rep.Recomputed || rep.Drift > 0.01) {
			t.Fatalf("epoch 5: loop did not settle after adopting (drift %.3f, recomputed %v)", rep.Drift, rep.Recomputed)
		}
	}
	if adoptedAt != 4 {
		t.Fatalf("adopted at epoch %d, want 4", adoptedAt)
	}

	st := rec.Stats()
	if st.Epochs != 5 || st.DriftEpochs != 1 || st.Remaps != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want 5 epochs, 1 drift epoch, 1 remap, 0 rejected", st)
	}

	// The recovery criterion: under phase B, the adopted mapping must
	// close a measurable fraction of the modeled gap between the stale
	// static mapping and the oracle (a mapping computed directly on
	// phase B with a cold eye).
	w := adaptiveWorkload(n)
	w.Comm = phaseB
	w.Iterations = horizon
	model := func(a *Assignment) float64 {
		res, err := perfsim.Simulate(top, w, eng.SimPlacement(a, 1))
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	staticSec := model(static)
	adaptiveSec := model(rec.Current())
	oracle, err := eng.Compute(TreeMatch, phaseB, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracleSec := model(oracle)
	gap := staticSec - oracleSec
	if gap <= 0 {
		t.Fatalf("no modeled gap to recover (static %.6fs, oracle %.6fs): scenario is too easy", staticSec, oracleSec)
	}
	recovered := (staticSec - adaptiveSec) / gap
	t.Logf("modeled seconds over %d iterations: static %.6f, adaptive %.6f, oracle %.6f (recovered %.0f%% of the gap)",
		horizon, staticSec, adaptiveSec, oracleSec, 100*recovered)
	if recovered < 0.5 {
		t.Fatalf("adaptive mapping recovered only %.0f%% of the static-vs-oracle gap, want >= 50%%", 100*recovered)
	}
}

// TestAdaptiveDriftFreeNeverRemaps is the other half of the golden
// criterion: a workload whose traffic keeps its declared structure
// (including pure volume scaling, which is not drift) triggers zero
// remaps.
func TestAdaptiveDriftFreeNeverRemaps(t *testing.T) {
	const n = 16
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	phase := ringMatrix(n, 1<<20)
	halfVolume := ringMatrix(n, 1<<19) // same structure, half the traffic
	src := &phaseSource{matrices: []*comm.Matrix{phase, halfVolume, phase, comm.NewMatrix(n), phase}}
	rec, err := NewReconciler(eng, src, nil, AdaptiveConfig{Workload: adaptiveWorkload(n)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Prime(Fixed("declared", phase)); err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 5; epoch++ {
		rep, err := rec.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Recomputed || rep.Adopted {
			t.Fatalf("epoch %d: drift-free run recomputed (drift %.3f)", epoch, rep.Drift)
		}
	}
	st := rec.Stats()
	if st.Remaps != 0 || st.DriftEpochs != 0 {
		t.Fatalf("stats = %+v, want zero remaps and drift epochs", st)
	}
}

func TestDriftMetric(t *testing.T) {
	a := ringMatrix(8, 100)
	if d := Drift(a, a); d != 0 {
		t.Errorf("Drift(a, a) = %g, want 0", d)
	}
	scaled := ringMatrix(8, 500)
	if d := Drift(a, scaled); d > 1e-9 {
		t.Errorf("Drift(a, 5a) = %g, want ~0 (scaling is not drift)", d)
	}
	b := strideClusters(8, 4, 100)
	if d := Drift(a, b); d < 0.5 {
		t.Errorf("Drift(ring, clusters) = %g, want substantial", d)
	}
	if d := Drift(a, comm.NewMatrix(8)); d != 1 {
		t.Errorf("Drift(a, zero) = %g, want 1", d)
	}
	if d := Drift(comm.NewMatrix(8), comm.NewMatrix(8)); d != 0 {
		t.Errorf("Drift(zero, zero) = %g, want 0", d)
	}
	if d := Drift(a, comm.NewMatrix(4)); d != 1 {
		t.Errorf("Drift across orders = %g, want 1", d)
	}
	if d := Drift(nil, a); d != 1 {
		t.Errorf("Drift(nil, a) = %g, want 1", d)
	}
}

func TestReconcilerGuards(t *testing.T) {
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	src := Fixed("trace", ringMatrix(4, 10))
	if _, err := NewReconciler(nil, src, nil, AdaptiveConfig{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewReconciler(eng, nil, nil, AdaptiveConfig{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewReconciler(eng, src, nil, AdaptiveConfig{Strategy: "no-such"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	rec, err := NewReconciler(eng, src, nil, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Epoch(); err == nil {
		t.Error("Epoch before Prime accepted")
	}
	if err := rec.SetCurrent(nil, nil); err == nil {
		t.Error("SetCurrent(nil, nil) accepted")
	}
}

// TestAdaptiveStatsReachService verifies the counters surface through
// the Service stats — the end-to-end threading of the feedback loop.
func TestAdaptiveStatsReachService(t *testing.T) {
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	phase := ringMatrix(8, 1<<16)
	rec, err := NewReconciler(eng, Fixed("trace", phase), nil, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc.AttachReconciler(rec)
	if err := rec.Prime(Fixed("declared", phase)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rec.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := svc.Stats(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Adaptive.Epochs != 3 {
		t.Errorf("service adaptive epochs = %d, want 3", st.Adaptive.Epochs)
	}
}

// BenchmarkAdaptiveEpoch measures the steady-state (drift-free) epoch:
// extract + drift measurement, no recompute — the per-epoch overhead
// an application pays for running the loop.
func BenchmarkAdaptiveEpoch(b *testing.B) {
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	phase := ringMatrix(32, 1<<20)
	rec, err := NewReconciler(eng, Fixed("trace", phase), nil, AdaptiveConfig{Workload: adaptiveWorkload(32)})
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.Prime(Fixed("declared", phase)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveEpochRemap measures the full alarm path: drift
// detection, strategy recompute (cache-hot after the first), modeling
// and adoption, oscillating between two patterns.
func BenchmarkAdaptiveEpochRemap(b *testing.B) {
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	const n = 32
	a := ringMatrix(n, 1<<20)
	c := strideClusters(n, 4, 1<<20)
	flip := &phaseSource{}
	rec, err := NewReconciler(eng, flip, nil, AdaptiveConfig{Workload: adaptiveWorkload(n)})
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.Prime(Fixed("declared", a)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			flip.matrices = []*comm.Matrix{c}
		} else {
			flip.matrices = []*comm.Matrix{a}
		}
		flip.calls = 0
		if _, err := rec.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}
