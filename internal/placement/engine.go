package placement

import (
	"fmt"
	"sync"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

// defaultCacheEntries bounds the engine's mapping cache. A dynamic
// program oscillating between phases has a handful of distinct
// matrices; the experiments harness sweeps a few dozen workloads per
// machine. 256 covers both with room to spare.
const defaultCacheEntries = 256

// Engine owns the placement pipeline for one machine: matrix
// extraction from a running program, strategy dispatch with mapping
// memoisation, and binding commit. It is safe for concurrent use.
type Engine struct {
	top     *topology.Topology
	topoSig uint64

	mu     sync.Mutex
	cache  *mappingCache
	stats  CacheStats
	flight map[cacheKey]*flightCall
}

// flightCall is one in-progress strategy computation. Concurrent
// Compute calls for the same uncached key coalesce onto it
// (singleflight): the first caller runs the strategy, the others wait
// on done and clone the shared result. Without this, a busy daemon
// receiving a burst of identical requests would run the same expensive
// TreeMatch once per request — a thundering herd the cache alone
// cannot stop, since entries only appear after a compute finishes.
type flightCall struct {
	done chan struct{}
	a    *Assignment // immutable once done is closed (the cache's copy)
	err  error
}

// CacheStats counts mapping-cache traffic.
type CacheStats struct {
	// Hits is the number of Compute calls served from the cache.
	Hits uint64
	// Misses is the number of Compute calls that ran a strategy.
	Misses uint64
	// Entries is the current number of cached assignments.
	Entries int
}

// EngineOption customises a new engine.
type EngineOption func(*Engine)

// WithCacheEntries bounds the mapping cache (0 disables caching).
func WithCacheEntries(n int) EngineOption {
	return func(e *Engine) { e.cache = newMappingCache(n) }
}

// NewEngine creates a placement engine for one machine.
func NewEngine(top *topology.Topology, opts ...EngineOption) (*Engine, error) {
	if top == nil {
		return nil, fmt.Errorf("placement: nil topology")
	}
	e := &Engine{
		top:     top,
		topoSig: Signature(top),
		cache:   newMappingCache(defaultCacheEntries),
		flight:  make(map[cacheKey]*flightCall),
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Topology returns the machine the engine places onto.
func (e *Engine) Topology() *topology.Topology { return e.top }

// TopologySignature returns the cached Signature of the engine's
// machine, so callers comparing machines need not re-marshal the
// tree.
func (e *Engine) TopologySignature() uint64 { return e.topoSig }

// Extract produces the communication matrix from a source — step 1 of
// the pipeline (orwl_dependency_get), behind the MatrixSource seam:
// the declared handle graph, the runtime-observed traffic, or a fixed
// trace all enter the pipeline here.
func (e *Engine) Extract(src MatrixSource) (*comm.Matrix, error) {
	if src == nil {
		return nil, fmt.Errorf("placement: extract from nil source")
	}
	m, err := src.Matrix()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("placement: source %q produced a nil matrix", src.Name())
	}
	return m, nil
}

// ExtractMatrix derives the communication matrix from the declared
// runtime state of a program — Extract over a DeclaredSource. A nil
// program, or one that has not announced any handles, is a
// descriptive error instead of a panic.
func (e *Engine) ExtractMatrix(prog *orwl.Program) (*comm.Matrix, error) {
	return e.Extract(Declared(prog))
}

// Compute runs the named strategy — step 2 of the pipeline
// (orwl_affinity_compute) — memoising the result. n may be zero when
// m is non-nil, in which case the matrix order is used. The returned
// assignment is the caller's to keep: mutating it does not corrupt
// the cache.
func (e *Engine) Compute(strategy string, m *comm.Matrix, n int, opt Options) (*Assignment, error) {
	a, _, err := e.ComputeWithInfo(strategy, m, n, opt)
	return a, err
}

// ComputeWithInfo is Compute additionally reporting whether the
// assignment was served from the mapping cache — the signal the
// Service surface forwards to remote callers, who cannot read the
// engine's counters between calls.
func (e *Engine) ComputeWithInfo(strategy string, m *comm.Matrix, n int, opt Options) (*Assignment, bool, error) {
	return e.ComputeHinted(strategy, m, 0, n, opt)
}

// ComputeHinted is ComputeWithInfo with an optional precomputed matrix
// fingerprint (PlaceRequest.MatrixFP): hashing the matrix is the
// dominant cost of a warm cache hit, and callers that already know the
// identity — the wire layer resolved the matrix BY fingerprint, or the
// service hashed it once for its own caches — pass it here instead of
// paying it again. fp zero means unknown.
func (e *Engine) ComputeHinted(strategy string, m *comm.Matrix, fp uint64, n int, opt Options) (*Assignment, bool, error) {
	s, ok := Lookup(strategy)
	if !ok {
		return nil, false, fmt.Errorf("placement: unknown strategy %q (have %v)", strategy, Names())
	}
	if n == 0 && m != nil {
		n = m.Order()
	}
	key := cacheKey{
		topo:     e.topoSig,
		entities: n,
		strategy: strategy,
	}
	if s.CommAware() {
		// Comm-oblivious strategies keep key.matrix zero so identical
		// requests share one entry across matrices — the hint must not
		// split them.
		if key.matrix = fp; key.matrix == 0 {
			key.matrix = matrixFingerprint(m)
		}
	}
	if usesOptions(s) {
		// Strategies declaring options-insensitivity share one entry
		// across option values instead of duplicating identical
		// results.
		key.options = optionsFingerprint(opt)
	}
	return e.computeKeyed(key, strategy, func() (*Assignment, error) {
		return s.Map(e.top, m, n, opt)
	})
}

// ExtractAffinity produces the communication affinity from a source —
// Extract lifted onto the representation-independent surface, so a
// sparse source (a fleet matrix, observed counters above the dense
// threshold) enters the pipeline without materializing n².
func (e *Engine) ExtractAffinity(src AffinitySource) (comm.Affinity, error) {
	if src == nil {
		return nil, fmt.Errorf("placement: extract from nil affinity source")
	}
	a, err := src.Affinity()
	if err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("placement: source %q produced a nil affinity", src.Name())
	}
	return a, nil
}

// ComputeAffinity is Compute on the affinity surface: strategies
// implementing AffinityMapper map the representation directly (the
// treematch strategy runs the partitioned sparse path above the
// threshold); others fall back to the dense form. Results are memoised
// under comm.FingerprintOf — a dense and a sparse affinity with the
// same entries share an entry — in a key space disjoint from the
// dense Compute path's wire fingerprints.
func (e *Engine) ComputeAffinity(strategy string, a comm.Affinity, n int, opt Options) (*Assignment, bool, error) {
	s, ok := Lookup(strategy)
	if !ok {
		return nil, false, fmt.Errorf("placement: unknown strategy %q (have %v)", strategy, Names())
	}
	if s.CommAware() && a == nil {
		return nil, false, fmt.Errorf("placement: %s: nil affinity", strategy)
	}
	if n == 0 && a != nil {
		n = a.Order()
	}
	key := cacheKey{
		topo:     e.topoSig,
		entities: n,
		strategy: strategy,
	}
	if s.CommAware() {
		key.affinity = true
		key.matrix = comm.FingerprintOf(a)
	}
	if usesOptions(s) {
		key.options = optionsFingerprint(opt)
	}
	return e.computeKeyed(key, strategy, func() (*Assignment, error) {
		if am, ok := s.(AffinityMapper); ok && s.CommAware() {
			return am.MapAffinity(e.top, a, n, opt)
		}
		var m *comm.Matrix
		if a != nil {
			m = a.Dense()
		}
		return s.Map(e.top, m, n, opt)
	})
}

// computeKeyed serves one cache key: from the cache, by joining an
// in-flight computation of the same key, or by running run itself
// (singleflight leader). The bool result reports "served without a
// compute".
func (e *Engine) computeKeyed(key cacheKey, strategy string, run func() (*Assignment, error)) (*Assignment, bool, error) {
	e.mu.Lock()
	if a, ok := e.cache.get(key); ok {
		e.stats.Hits++
		e.mu.Unlock()
		return a.Clone(), true, nil
	}
	if c, ok := e.flight[key]; ok {
		// Singleflight: another goroutine is already computing this
		// key. Wait for it and share its result instead of running the
		// strategy again. Counted as a hit: the call was served without
		// a compute.
		e.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		e.mu.Lock()
		e.stats.Hits++
		e.mu.Unlock()
		return c.a.Clone(), true, nil
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight[key] = c
	e.stats.Misses++
	e.mu.Unlock()

	// complete publishes the flight's outcome exactly once: clears the
	// entry, fills the cache on success, and unblocks the waiters.
	completed := false
	complete := func(stored *Assignment, err error) {
		completed = true
		e.mu.Lock()
		delete(e.flight, key)
		if stored != nil {
			e.cache.put(key, stored)
		}
		e.mu.Unlock()
		c.a = stored
		c.err = err
		close(c.done)
	}
	// A panicking strategy must not strand the flight entry: waiters
	// parked on done (and every future Compute of this key) would
	// deadlock. Resolve the flight with an error and let the panic
	// propagate to the leader's caller.
	defer func() {
		if !completed {
			complete(nil, fmt.Errorf("placement: strategy %q panicked", strategy))
		}
	}()

	// The strategy runs outside the lock: TreeMatch on a large matrix
	// is the expensive path the cache exists for, and concurrent
	// computes of different keys must not serialise.
	a, err := run()
	if err != nil {
		complete(nil, err)
		return nil, false, err
	}
	// Ownership: the cache (and any waiting followers, via c.a) own one
	// private copy; the strategy's original goes back to the leader
	// uncloned, free for the caller to mutate.
	complete(a.Clone(), nil)
	return a, false, nil
}

// Bind commits an assignment to a program — step 3 of the pipeline
// (orwl_affinity_set). Unbound assignments are a no-op: the program
// simply keeps running under the OS scheduler.
func (e *Engine) Bind(prog *orwl.Program, a *Assignment) error {
	return Bind(prog, a)
}

// Bind commits an assignment to a program. It is a free function
// because binding is purely local: a program that obtained its
// assignment from a remote placement service applies it without an
// engine of its own.
func Bind(prog *orwl.Program, a *Assignment) error {
	if prog == nil {
		return fmt.Errorf("placement: bind to nil program")
	}
	if a == nil {
		return fmt.Errorf("placement: bind nil assignment")
	}
	if a.Unbound {
		return nil
	}
	for task, pu := range a.ComputePU {
		prog.SetBinding(task, pu)
	}
	for task, pu := range a.ControlPU {
		if pu >= 0 {
			prog.SetControlBinding(task, pu)
		}
	}
	return nil
}

// BindTasks commits only the named tasks of an assignment to a program
// — the O(changed) re-bind behind a delta remap: when the control plane
// says which tasks moved, the other bindings are already in force and
// re-pinning them would only churn the scheduler. Task indices outside
// the assignment are an error (the moved set and the assignment must
// describe the same task space). Unbound assignments are a no-op, as in
// Bind.
func BindTasks(prog *orwl.Program, a *Assignment, tasks []int) error {
	if prog == nil {
		return fmt.Errorf("placement: bind to nil program")
	}
	if a == nil {
		return fmt.Errorf("placement: bind nil assignment")
	}
	if a.Unbound {
		return nil
	}
	for _, t := range tasks {
		if t < 0 || t >= len(a.ComputePU) {
			return fmt.Errorf("placement: bind task %d outside assignment of %d tasks", t, len(a.ComputePU))
		}
		prog.SetBinding(t, a.ComputePU[t])
		if t < len(a.ControlPU) && a.ControlPU[t] >= 0 {
			prog.SetControlBinding(t, a.ControlPU[t])
		}
	}
	return nil
}

// PlaceProgram runs the full pipeline on a scheduled program: extract
// the declared matrix, compute the named strategy's assignment, commit
// it. Nil or handle-less programs return a descriptive error.
func (e *Engine) PlaceProgram(prog *orwl.Program, strategy string, opt Options) (*Assignment, error) {
	if prog == nil {
		return nil, fmt.Errorf("placement: place nil program")
	}
	return e.PlaceSource(prog, Declared(prog), strategy, opt)
}

// PlaceSource runs the pipeline with an explicit matrix source:
// extract from src, compute, commit onto prog. It is how a feedback
// loop re-places a program from its observed traffic while the
// declared graph stays untouched.
func (e *Engine) PlaceSource(prog *orwl.Program, src MatrixSource, strategy string, opt Options) (*Assignment, error) {
	if prog == nil {
		return nil, fmt.Errorf("placement: place nil program")
	}
	m, err := e.Extract(src)
	if err != nil {
		return nil, err
	}
	n := m.Order()
	if tasks := prog.NumTasks(); n < tasks {
		// A source narrower than the program (e.g. an empty observed
		// window) must not silently place a task subset.
		return nil, fmt.Errorf("placement: source %q covers %d entities, program has %d tasks", src.Name(), n, tasks)
	}
	a, err := e.Compute(strategy, m, 0, opt)
	if err != nil {
		return nil, err
	}
	if err := e.Bind(prog, a); err != nil {
		return nil, err
	}
	return a, nil
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Entries = e.cache.len()
	return st
}
