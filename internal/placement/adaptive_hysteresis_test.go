package placement

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// TestAdaptiveHysteresisOscillation replays a flapping trace: the
// pattern alternates ring/clusters every epoch, so each drift alarm is
// one epoch old when the pattern flips back. With AdoptAfter=2 the
// over-threshold streak never matures — the reconciler holds (no
// recompute, no remap) instead of chasing the oscillation, which is
// the failure mode hysteresis exists to prevent. When the shift
// finally persists, the second consecutive alarm adopts; the cooldown
// then holds the next alarm even though its streak is long enough.
func TestAdaptiveHysteresisOscillation(t *testing.T) {
	const (
		n   = 16
		vol = 1 << 20
	)
	ring := ringMatrix(n, vol)
	clus := strideClusters(n, 4, vol)

	// Epochs 1-4 oscillate, 5-6 hold the shifted pattern, 7-9 shift
	// back (into the cooldown the adoption at 6 started).
	src := &phaseSource{matrices: []*comm.Matrix{
		clus, ring, clus, ring, // flapping
		clus, clus, // persistent shift
		ring, ring, ring, // shift back, lands in cooldown
	}}
	eng, err := NewEngine(topology.Fig2Machine())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewReconciler(eng, src, nil, AdaptiveConfig{
		AdoptAfter:     2,
		CooldownEpochs: 2,
		Horizon:        50,
		Workload:       adaptiveWorkload(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Prime(Fixed("declared", ring)); err != nil {
		t.Fatal(err)
	}

	step := func(epoch int) *EpochReport {
		t.Helper()
		rep, err := rec.Epoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		return rep
	}

	// Flapping phase: cluster epochs alarm but are held (streak 1 < 2);
	// ring epochs are drift-free and reset the streak.
	for epoch := 1; epoch <= 4; epoch++ {
		rep := step(epoch)
		if rep.Recomputed || rep.Adopted {
			t.Fatalf("epoch %d: oscillation triggered a recompute (drift %.3f)", epoch, rep.Drift)
		}
		shifted := epoch%2 == 1
		if shifted && !rep.Held {
			t.Fatalf("epoch %d: drift alarm not held (drift %.3f)", epoch, rep.Drift)
		}
		if !shifted && rep.Held {
			t.Fatalf("epoch %d: drift-free epoch held", epoch)
		}
	}

	// Persistent shift: first alarm held, second matures and adopts.
	if rep := step(5); !rep.Held || rep.Recomputed {
		t.Fatalf("epoch 5: first persistent alarm = %+v, want held", rep)
	}
	rep := step(6)
	if !rep.Recomputed || !rep.Adopted {
		t.Fatalf("epoch 6: second persistent alarm = %+v, want adoption", rep)
	}

	// Cooldown: the shift back alarms with a maturing streak, but the
	// two cooldown epochs hold it; only epoch 9 may recompute.
	if rep := step(7); !rep.Held || rep.Recomputed {
		t.Fatalf("epoch 7: cooldown epoch = %+v, want held", rep)
	}
	if rep := step(8); !rep.Held || rep.Recomputed {
		t.Fatalf("epoch 8: cooldown epoch = %+v, want held", rep)
	}
	rep9 := step(9)
	if !rep9.Recomputed {
		t.Fatalf("epoch 9: post-cooldown persistent alarm = %+v, want recompute", rep9)
	}

	st := rec.Stats()
	// Epoch 6 adopts; epoch 9's recompute adopts only if the modeled
	// gain of going back clears the migration cost (the gain model, not
	// the hysteresis, owns that call).
	want := uint64(1)
	if rep9.Adopted {
		want = 2
	}
	if st.Remaps != want {
		t.Fatalf("remaps = %d, want %d", st.Remaps, want)
	}
	if st.Epochs != 9 {
		t.Fatalf("epochs = %d, want 9", st.Epochs)
	}
}

// TestAdaptiveAdoptAfterDefaults pins the default: AdoptAfter 0 means
// adopt on the first alarm (the pre-hysteresis behaviour), so existing
// configs keep their semantics.
func TestAdaptiveAdoptAfterDefaults(t *testing.T) {
	cfg := AdaptiveConfig{}.withDefaults()
	if cfg.AdoptAfter != 1 {
		t.Fatalf("default AdoptAfter = %d, want 1", cfg.AdoptAfter)
	}
	if cfg.CooldownEpochs != 0 {
		t.Fatalf("default CooldownEpochs = %d, want 0", cfg.CooldownEpochs)
	}
}
