package placement

import (
	"math"
	"testing"

	"orwlplace/internal/topology"
)

func TestSignatureStructural(t *testing.T) {
	if Signature(topology.TinyHT()) != Signature(topology.TinyHT()) {
		t.Error("two builds of the same machine hash apart")
	}
	if Signature(topology.TinyHT()) == Signature(topology.TinyFlat()) {
		t.Error("distinct machines hash alike")
	}
}

// TestSignatureBrokenTopologiesDoNotAlias is the regression test for
// the silent-marshal-error bug: Signature used to drop a failed
// MarshalJSON on the floor and hash the name alone, so two
// differently-broken topologies with the same name hashed identically
// and could alias in the mapping cache.
func TestSignatureBrokenTopologiesDoNotAlias(t *testing.T) {
	// encoding/json refuses NaN and Inf, so a NaN attribute is the
	// smallest honestly-broken topology.
	nan := topology.TinyHT()
	nan.Attrs.ClockMHz = math.NaN()
	if _, err := nan.MarshalJSON(); err == nil {
		t.Fatal("NaN topology marshalled; the test needs a failing encoding")
	}
	inf := topology.TinyHT()
	inf.Attrs.ClockMHz = math.Inf(1)

	if Signature(nan) == Signature(inf) {
		t.Error("differently-broken same-named topologies alias")
	}
	// Same error text, different tree shape: encoding/json's error
	// names the value ("json: unsupported value: NaN") but not where
	// it sits, so the structure must be fingerprinted too.
	nanFlat := topology.TinyFlat()
	nanFlat.Attrs.Name = nan.Attrs.Name
	nanFlat.Attrs.ClockMHz = math.NaN()
	if Signature(nan) == Signature(nanFlat) {
		t.Error("same-error, differently-shaped topologies alias")
	}
	if Signature(nan) == Signature(topology.TinyHT()) {
		t.Error("a broken topology aliases with its healthy twin")
	}
	if Signature(nan) != Signature(nan) {
		t.Error("signature of a broken topology is unstable")
	}
}
