package placement

import (
	"math"
	"sort"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// phaseAffinitySource scripts an AffinitySource the way phaseSource
// scripts a MatrixSource: affs[i] on call i, clamping at the last.
type phaseAffinitySource struct {
	affs  []comm.Affinity
	calls int
}

func (s *phaseAffinitySource) Name() string { return "phase-affinity-script" }

func (s *phaseAffinitySource) Affinity() (comm.Affinity, error) {
	i := s.calls
	if i >= len(s.affs) {
		i = len(s.affs) - 1
	}
	s.calls++
	return s.affs[i], nil
}

// sparseCopy rebuilds an affinity as a Sparse with identical entries.
func sparseCopy(a comm.Affinity) *comm.Sparse {
	s := comm.NewSparse(a.Order())
	a.ForEach(func(i, j int, v float64) { s.Set(i, j, v) })
	return s
}

// TestDriftAffinityMatchesDense pins DriftAffinity to the dense Drift
// metric: same value on the same pattern whichever representation
// carries it, plus the degenerate cases.
func TestDriftAffinityMatchesDense(t *testing.T) {
	a := ringMatrix(16, 1<<20)
	b := strideClusters(16, 4, 1<<20)
	want := Drift(a, b)
	if got := DriftAffinity(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DriftAffinity(dense) = %v, Drift = %v", got, want)
	}
	if got := DriftAffinity(sparseCopy(a), sparseCopy(b)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DriftAffinity(sparse) = %v, Drift = %v", got, want)
	}
	if got := DriftAffinity(sparseCopy(a), b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DriftAffinity(mixed) = %v, Drift = %v", got, want)
	}
	if d := DriftAffinity(a, a.CloneAffinity()); d != 0 {
		t.Fatalf("identical affinities drift %v, want 0", d)
	}
	// Uniform scaling is not drift.
	scaled := sparseCopy(a)
	a.ForEach(func(i, j int, v float64) { scaled.Set(i, j, 3*v) })
	if d := DriftAffinity(a, scaled); d > 1e-12 {
		t.Fatalf("uniformly scaled affinity drift %v, want 0", d)
	}
	if d := DriftAffinity(a, comm.NewSparse(16)); d != 1 {
		t.Fatalf("non-zero vs all-zero drift %v, want 1", d)
	}
	if d := DriftAffinity(a, comm.NewSparse(8)); d != 1 {
		t.Fatalf("order mismatch drift %v, want 1", d)
	}
}

// TestPartitionDrift pins the per-partition semantics: a partition
// whose internal pattern only rescaled scores 0, a fully rewired one
// scores 1, and cross-partition traffic is attributed to neither.
func TestPartitionDrift(t *testing.T) {
	parts := &treematch.Partitioning{Parts: []treematch.Partition{
		{Tasks: []int{0, 1, 2, 3}},
		{Tasks: []int{4, 5, 6, 7}},
	}}
	base := comm.NewSparse(8)
	base.AddSym(0, 1, 100)
	base.AddSym(2, 3, 100)
	base.AddSym(4, 5, 100)
	base.AddSym(6, 7, 100)

	win := comm.NewSparse(8)
	win.AddSym(0, 1, 200) // partition 0: same pattern, scaled
	win.AddSym(2, 3, 200)
	win.AddSym(4, 6, 100) // partition 1: disjoint pairs
	win.AddSym(5, 7, 100)

	d := PartitionDrift(parts, base, win)
	if len(d) != 2 {
		t.Fatalf("got %d drifts, want 2", len(d))
	}
	if d[0] > 1e-12 {
		t.Fatalf("rescaled partition drift %v, want 0", d[0])
	}
	if math.Abs(d[1]-1) > 1e-12 {
		t.Fatalf("rewired partition drift %v, want 1", d[1])
	}

	// A huge new cross-partition flow changes neither partition's
	// internal pattern, so neither partition alarms.
	cross := sparseCopy(base)
	cross.AddSym(0, 7, 1e9)
	d = PartitionDrift(parts, base, cross)
	if d[0] > 1e-12 || d[1] > 1e-12 {
		t.Fatalf("cross-partition traffic attributed to a partition: %v", d)
	}

	// An idle partition going live is full drift for it alone.
	idle := comm.NewSparse(8)
	idle.AddSym(0, 1, 100)
	idle.AddSym(2, 3, 100)
	d = PartitionDrift(parts, idle, base)
	if d[0] > 1e-12 {
		t.Fatalf("stable partition drift %v, want 0", d[0])
	}
	if d[1] != 1 {
		t.Fatalf("newly-live partition drift %v, want 1", d[1])
	}
}

// TestAdaptivePartitionedRemapIsolated is the per-subtree acceptance
// scenario: a 2048-task partitioned mapping on the fleet machine whose
// traffic drifts inside exactly one partition. The reconciler must
// alarm on that partition alone, re-place only its subtree, and leave
// every other task's binding untouched.
func TestAdaptivePartitionedRemapIsolated(t *testing.T) {
	top := topology.Fleet1K()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	base := comm.RingOfClusters(64, 32, 1<<20, 1<<12) // 2048 tasks, sparse

	asrc := &phaseAffinitySource{}
	rec, err := NewAffinityReconciler(eng, asrc, nil, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.PrimeAffinity(FixedAffinity("declared", base)); err != nil {
		t.Fatal(err)
	}
	static := rec.Current()
	if static.Partitions == nil || len(static.Partitions.Parts) < 2 {
		t.Fatalf("prime did not produce a partitioned mapping: %+v", static.Partitions)
	}
	if aff := rec.BaselineAffinity(); aff == nil || aff.Order() != base.Order() {
		t.Fatalf("baseline affinity not recorded")
	}

	// Rewire the traffic inside one partition: drop its internal ring
	// edges and pair up tasks from opposite ends of the partition with
	// heavy volume, so the old per-core neighbourhoods are wrong for
	// the new pattern and a remap has real modeled gain.
	const target = 1
	ts := append([]int(nil), static.Partitions.Parts[target].Tasks...)
	sort.Ints(ts)
	inTarget := make(map[int]bool, len(ts))
	for _, task := range ts {
		inTarget[task] = true
	}
	win := comm.NewSparse(base.Order())
	base.ForEach(func(i, j int, v float64) {
		if !(inTarget[i] && inTarget[j]) {
			win.Set(i, j, v)
		}
	})
	for k := 0; k < len(ts)/2; k++ {
		win.AddSym(ts[k], ts[len(ts)-1-k], 1<<26)
	}

	asrc.affs = []comm.Affinity{base, win}

	// Epoch 1: traffic matches the baseline — no partition alarms.
	rep, err := rec.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drift > 1e-9 || rep.Recomputed {
		t.Fatalf("drift-free epoch: drift %v recomputed %v", rep.Drift, rep.Recomputed)
	}
	if len(rep.PartitionDrifts) != len(static.Partitions.Parts) {
		t.Fatalf("got %d partition drifts, want %d", len(rep.PartitionDrifts), len(static.Partitions.Parts))
	}

	// Epoch 2: the rewired window. Only the target partition alarms.
	rep, err = rec.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	for pi, d := range rep.PartitionDrifts {
		if pi == target {
			if d <= 0.25 {
				t.Fatalf("target partition drift %v, want over threshold", d)
			}
		} else if d > 0.25 {
			t.Fatalf("partition %d drift %v without its traffic changing", pi, d)
		}
	}
	if !rep.Recomputed {
		t.Fatalf("drifted epoch did not recompute (drift %v)", rep.Drift)
	}
	if len(rep.RemappedPartitions) != 1 || rep.RemappedPartitions[0] != target {
		t.Fatalf("remapped partitions %v, want [%d]", rep.RemappedPartitions, target)
	}
	if !rep.Adopted {
		t.Fatalf("candidate rejected: gain %v cost %v", rep.GainSeconds, rep.CostSeconds)
	}

	// Isolation: every task outside the target partition keeps its PU.
	after := rep.Assignment
	moved := 0
	for task := range after.ComputePU {
		if after.ComputePU[task] != static.ComputePU[task] {
			if !inTarget[task] {
				t.Fatalf("task %d outside the drifted partition moved: PU %d -> %d",
					task, static.ComputePU[task], after.ComputePU[task])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("remap of the drifted partition moved no tasks")
	}
}

// TestComputeAffinityCaching pins the affinity compute path's cache
// identity: a dense and a sparse affinity with the same entries share
// one entry (comm.FingerprintOf is representation-independent), and the
// affinity key space is disjoint from the dense Compute path's.
func TestComputeAffinityCaching(t *testing.T) {
	top := topology.Fig2Machine()
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	m := ringMatrix(16, 1<<20)

	a1, cached, err := eng.ComputeAffinity(TreeMatch, m, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatalf("first affinity compute reported cached")
	}
	a2, cached, err := eng.ComputeAffinity(TreeMatch, sparseCopy(m), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatalf("sparse affinity with identical entries missed the cache")
	}
	for i := range a1.ComputePU {
		if a1.ComputePU[i] != a2.ComputePU[i] {
			t.Fatalf("cached sparse result differs at task %d", i)
		}
	}

	// The dense Compute path must not alias the affinity entry: its
	// matrix field is a different hash function over the same domain.
	before := eng.Stats().Misses
	a3, err := eng.Compute(TreeMatch, m, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Misses != before+1 {
		t.Fatalf("dense Compute was served from an affinity-path entry")
	}
	for i := range a1.ComputePU {
		if a1.ComputePU[i] != a3.ComputePU[i] {
			t.Fatalf("affinity and dense paths disagree at task %d", i)
		}
	}
}

// TestAffinitySourceAdapters covers AffinityOf and FixedAffinity.
func TestAffinitySourceAdapters(t *testing.T) {
	m := ringMatrix(4, 1)
	as := AffinityOf(Fixed("trace", m))
	if as.Name() != "trace" {
		t.Fatalf("adapted name %q", as.Name())
	}
	aff, err := as.Affinity()
	if err != nil {
		t.Fatal(err)
	}
	if aff.Order() != 4 || aff.Total() != m.Total() {
		t.Fatalf("adapted affinity order %d total %v", aff.Order(), aff.Total())
	}

	fa := FixedAffinity("", comm.NewSparse(3))
	if fa.Name() != "fixed-affinity" {
		t.Fatalf("default fixed-affinity name %q", fa.Name())
	}
	if _, err := FixedAffinity("empty", nil).Affinity(); err == nil {
		t.Fatalf("nil fixed affinity did not error")
	}
}
