package placement

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/treematch"
)

// This file closes the placement loop. The paper computes a mapping
// once, at the schedule barrier, from the declared dependency graph —
// and its own evaluation shows dynamic traffic drifting away from
// that graph is exactly where bound placement loses ground. The
// Reconciler turns the one-shot pipeline into a feedback loop: every
// epoch it samples an observed-traffic window, measures how far the
// traffic has drifted from the matrix backing the current assignment,
// recomputes through the same strategy registry when the drift
// crosses a threshold, and adopts the new mapping only when the
// perfsim-modeled gain over the remaining horizon beats the modeled
// migration cost.

// AdaptiveStats counts a reconciler's activity. It is embedded in
// ServiceStats so the service surface (and the wire protocol, schema
// v3) reports the feedback loop next to the cache counters.
type AdaptiveStats struct {
	// Epochs is the number of reconciliation epochs run.
	Epochs uint64
	// DriftEpochs is the number of epochs whose drift exceeded the
	// threshold — each triggered a recompute, unless the adopt
	// hysteresis held it (see AdaptiveConfig.AdoptAfter).
	DriftEpochs uint64
	// Remaps is the number of adopted re-placements.
	Remaps uint64
	// Rejected is the number of recomputed mappings discarded because
	// the modeled gain did not cover the modeled migration cost.
	Rejected uint64
	// LastDrift is the drift measured by the most recent epoch, in
	// [0, 1]. Aggregated stats (a service with several reconcilers, a
	// fleet) report the maximum across contributors with activity —
	// the alarm view: "how bad is the worst drift anyone measured
	// last" — which is deterministic regardless of iteration order.
	LastDrift float64
}

// merge accumulates other into st (fleet aggregation): counters sum,
// LastDrift takes the maximum over contributors that have run at
// least one epoch, so an idle machine does not zero out a busy one
// and map-iteration order cannot flap the result. st.Epochs == 0
// before accumulation means no active contributor has merged yet.
func (st *AdaptiveStats) merge(other AdaptiveStats) {
	if other.Epochs > 0 && (st.Epochs == 0 || other.LastDrift > st.LastDrift) {
		st.LastDrift = other.LastDrift
	}
	st.Epochs += other.Epochs
	st.DriftEpochs += other.DriftEpochs
	st.Remaps += other.Remaps
	st.Rejected += other.Rejected
}

// Drift measures how far communication matrix b has moved from a, as
// half the L1 distance between the two symmetrized, volume-normalized
// matrices: 0 means identical structure (scaling the same pattern up
// or down is not drift), 1 means the traffic now flows entirely
// between different pairs. One all-zero matrix against a non-zero one
// is full drift; two all-zero matrices agree.
func Drift(a, b *comm.Matrix) float64 {
	if a == nil || b == nil || a.Order() != b.Order() {
		return 1
	}
	sa, sb := a.Symmetrized(), b.Symmetrized()
	ta, tb := sa.Total(), sb.Total()
	if ta == 0 && tb == 0 {
		return 0
	}
	if ta == 0 || tb == 0 {
		return 1
	}
	n := a.Order()
	var dist float64
	for i := 0; i < n; i++ {
		ra, rb := sa.RowView(i), sb.RowView(i)
		for j := range ra {
			dist += math.Abs(ra[j]/ta - rb[j]/tb)
		}
	}
	return dist / 2
}

// DriftAffinity is Drift on the representation-independent surface,
// walking only the union of nonzeros — O(nnz), so a sparse 10k-task
// window is measured without touching an n² slab.
func DriftAffinity(a, b comm.Affinity) float64 {
	if a == nil || b == nil || a.Order() != b.Order() {
		return 1
	}
	sa, sb := comm.NewSparse(0), comm.NewSparse(0)
	comm.SymmetrizeAffinityInto(sa, a)
	comm.SymmetrizeAffinityInto(sb, b)
	ta, tb := sa.Total(), sb.Total()
	if ta == 0 && tb == 0 {
		return 0
	}
	if ta == 0 || tb == 0 {
		return 1
	}
	var dist float64
	sa.ForEach(func(i, j int, va float64) {
		dist += math.Abs(va/ta - sb.At(i, j)/tb)
	})
	sb.ForEach(func(i, j int, vb float64) {
		if sa.At(i, j) == 0 {
			dist += vb / tb
		}
	})
	return dist / 2
}

// PartitionDrift measures drift per partition of a partitioned mapping:
// for each partition, the half-L1 distance between the per-partition
// volume-normalized symmetrized restrictions of base and window to that
// partition's internal task pairs. A partition whose internal pattern
// is stable scores 0 however much the others move — the signal that
// lets re-placement recompute only the drifted subtree. Cross-partition
// traffic is not attributed to any partition: the partition structure
// itself owns it, and shifting it is a matter for a full re-placement,
// not a subtree remap. Runs in O(nnz + tasks).
func PartitionDrift(parts *treematch.Partitioning, base, window comm.Affinity) []float64 {
	out := make([]float64, len(parts.Parts))
	if base == nil || window == nil || base.Order() != window.Order() {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	n := base.Order()
	partOf := make([]int, n)
	for i := range partOf {
		partOf[i] = -1
	}
	for pi, p := range parts.Parts {
		for _, g := range p.Tasks {
			if g >= 0 && g < n {
				partOf[g] = pi
			}
		}
	}
	sa, sb := comm.NewSparse(0), comm.NewSparse(0)
	comm.SymmetrizeAffinityInto(sa, base)
	comm.SymmetrizeAffinityInto(sb, window)
	ta := make([]float64, len(out))
	tb := make([]float64, len(out))
	internal := func(i, j int) int {
		if pi := partOf[i]; pi >= 0 && partOf[j] == pi {
			return pi
		}
		return -1
	}
	sa.ForEach(func(i, j int, v float64) {
		if pi := internal(i, j); pi >= 0 {
			ta[pi] += v
		}
	})
	sb.ForEach(func(i, j int, v float64) {
		if pi := internal(i, j); pi >= 0 {
			tb[pi] += v
		}
	})
	dist := make([]float64, len(out))
	sa.ForEach(func(i, j int, va float64) {
		if pi := internal(i, j); pi >= 0 && ta[pi] > 0 && tb[pi] > 0 {
			dist[pi] += math.Abs(va/ta[pi] - sb.At(i, j)/tb[pi])
		}
	})
	sb.ForEach(func(i, j int, vb float64) {
		if pi := internal(i, j); pi >= 0 && ta[pi] > 0 && tb[pi] > 0 && sa.At(i, j) == 0 {
			dist[pi] += vb / tb[pi]
		}
	})
	for pi := range out {
		switch {
		case ta[pi] == 0 && tb[pi] == 0:
			out[pi] = 0
		case ta[pi] == 0 || tb[pi] == 0:
			out[pi] = 1
		default:
			out[pi] = dist[pi] / 2
		}
	}
	return out
}

// AdaptiveConfig tunes a Reconciler.
type AdaptiveConfig struct {
	// Strategy names the registered strategy re-placements run through
	// (default TreeMatch).
	Strategy string
	// Options tunes the strategy.
	Options Options
	// DriftThreshold is the drift above which an epoch recomputes the
	// mapping (default 0.25).
	DriftThreshold float64
	// Horizon is the number of iterations a newly adopted mapping is
	// expected to serve — the window over which the modeled gain must
	// amortize the migration cost (default 50).
	Horizon int
	// WindowIterations is how many workload iterations one observed
	// window spans, used to scale the window down to per-iteration
	// volumes for the performance model (default 1).
	WindowIterations int
	// MinWindowBytes skips reconciliation for windows below this
	// volume — an idle program should neither count as drifted nor
	// trigger remaps (default 1, i.e. skip only empty windows).
	MinWindowBytes float64
	// AdoptAfter is the number of consecutive over-threshold epochs
	// required before a candidate mapping may be adopted (default 1:
	// adopt on the first alarm). An oscillating workload whose phases
	// are shorter than AdoptAfter epochs never accumulates the streak,
	// so the reconciler rides out the flapping instead of chasing it.
	AdoptAfter int
	// CooldownEpochs suppresses adoption for this many epochs after a
	// remap (default 0: none). Together with AdoptAfter this is the
	// adopt hysteresis: a remap is followed by a quiet period, and the
	// drift must then prove itself persistent again before the next
	// one.
	CooldownEpochs int
	// Workload is the performance-model template for gain/cost
	// modeling; its Comm and Iterations are overridden per epoch. Nil
	// synthesizes a communication-dominated template with a modest
	// per-thread working set.
	Workload *perfsim.Workload
	// Seed seeds the simulated OS scheduler when modeling unbound
	// assignments.
	Seed int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Strategy == "" {
		c.Strategy = TreeMatch
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.25
	}
	if c.Horizon == 0 {
		c.Horizon = 50
	}
	if c.WindowIterations == 0 {
		c.WindowIterations = 1
	}
	if c.MinWindowBytes == 0 {
		c.MinWindowBytes = 1
	}
	if c.AdoptAfter == 0 {
		c.AdoptAfter = 1
	}
	return c
}

// EpochReport describes one reconciliation epoch.
type EpochReport struct {
	// Epoch is the 1-based epoch index.
	Epoch uint64
	// WindowBytes is the total volume of the observed window.
	WindowBytes float64
	// Drift is the measured drift against the matrix backing the
	// current assignment. For partitioned mappings it is the maximum
	// per-partition drift — the alarm is the worst subtree.
	Drift float64
	// PartitionDrifts holds the per-partition drift of a partitioned
	// mapping (index-aligned with Assignment.Partitions.Parts); nil for
	// unpartitioned mappings.
	PartitionDrifts []float64
	// RemappedPartitions lists the partition indices whose subtrees were
	// recomputed this epoch (meaningful when Recomputed on a partitioned
	// mapping) — the partitions whose drift crossed the threshold. All
	// other partitions kept their placement verbatim.
	RemappedPartitions []int
	// Recomputed is true when the drift crossed the threshold and a
	// candidate mapping was computed.
	Recomputed bool
	// Held is true when the drift crossed the threshold but the adopt
	// hysteresis withheld the recompute: the over-threshold streak has
	// not yet reached AdoptAfter, or a recent remap's cooldown is still
	// running.
	Held bool
	// Adopted is true when the candidate was bound.
	Adopted bool
	// MovedTasks lists, ascending, the tasks whose placement (compute
	// PU, control PU or core) changed in an adopted remap — the set a
	// delta push ships and an O(changed) re-bind touches. It is nil
	// (unknown, distinct from empty) when the epoch adopted nothing or
	// when the old and new assignments are not comparable slot for slot
	// (unbound, or differently shaped).
	MovedTasks []int
	// GainSeconds is the modeled time saved over the horizon by the
	// candidate (meaningful when Recomputed).
	GainSeconds float64
	// CostSeconds is the modeled one-time migration cost of switching.
	CostSeconds float64
	// Assignment is the mapping in force after the epoch.
	Assignment *Assignment
}

// Reconciler is the epoch-driven adaptive re-placement engine for one
// program on one machine. Drive it by calling Epoch at whatever cadence
// suits the application (or Run for a ticker-driven loop). It is safe
// for concurrent use with the program it re-binds.
type Reconciler struct {
	eng  *Engine
	src  MatrixSource   // dense window source (classic loop)
	asrc AffinitySource // affinity window source — wins over src when set
	prog *orwl.Program  // nil: model-only, no binding commits
	cfg  AdaptiveConfig

	mu    sync.Mutex
	cur   *Assignment
	base  comm.Affinity // affinity backing cur — what drift is measured against
	stats AdaptiveStats

	// Adopt hysteresis state: consecutive over-threshold epochs seen,
	// and epochs left in the post-remap cooldown.
	overStreak int
	cooldown   int
}

// NewReconciler builds a reconciler re-placing prog (may be nil for
// model-only use) on eng's machine, fed by src — typically
// ObservedWindow(prog). Prime it with an initial mapping before the
// first Epoch.
func NewReconciler(eng *Engine, src MatrixSource, prog *orwl.Program, cfg AdaptiveConfig) (*Reconciler, error) {
	if eng == nil {
		return nil, fmt.Errorf("placement: adaptive: nil engine")
	}
	if src == nil {
		return nil, fmt.Errorf("placement: adaptive: nil matrix source")
	}
	cfg = cfg.withDefaults()
	if _, ok := Lookup(cfg.Strategy); !ok {
		return nil, fmt.Errorf("placement: adaptive: unknown strategy %q", cfg.Strategy)
	}
	return &Reconciler{eng: eng, src: src, prog: prog, cfg: cfg}, nil
}

// NewAffinityReconciler is NewReconciler fed by an AffinitySource: the
// loop for programs whose traffic is naturally sparse (10k-task fleets,
// observed counters above the dense threshold). Windows, baselines and
// candidates all stay on the representation-independent surface.
func NewAffinityReconciler(eng *Engine, src AffinitySource, prog *orwl.Program, cfg AdaptiveConfig) (*Reconciler, error) {
	if eng == nil {
		return nil, fmt.Errorf("placement: adaptive: nil engine")
	}
	if src == nil {
		return nil, fmt.Errorf("placement: adaptive: nil affinity source")
	}
	cfg = cfg.withDefaults()
	if _, ok := Lookup(cfg.Strategy); !ok {
		return nil, fmt.Errorf("placement: adaptive: unknown strategy %q", cfg.Strategy)
	}
	return &Reconciler{eng: eng, asrc: src, prog: prog, cfg: cfg}, nil
}

// Prime computes and commits the initial assignment from a source —
// typically Declared(prog), the paper's schedule-barrier mapping —
// and records its matrix as the drift baseline.
func (r *Reconciler) Prime(src MatrixSource) error {
	m, err := r.eng.Extract(src)
	if err != nil {
		return err
	}
	a, err := r.eng.Compute(r.cfg.Strategy, m, 0, r.cfg.Options)
	if err != nil {
		return err
	}
	if r.prog != nil {
		if err := Bind(r.prog, a); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.cur = a
	r.base = m.Clone()
	r.mu.Unlock()
	return nil
}

// PrimeAffinity is Prime on the affinity surface: compute and commit
// the initial assignment from an AffinitySource — the partitioned
// sparse path when the order warrants it — and record the affinity as
// the drift baseline.
func (r *Reconciler) PrimeAffinity(src AffinitySource) error {
	aff, err := r.eng.ExtractAffinity(src)
	if err != nil {
		return err
	}
	a, _, err := r.eng.ComputeAffinity(r.cfg.Strategy, aff, 0, r.cfg.Options)
	if err != nil {
		return err
	}
	if r.prog != nil {
		if err := Bind(r.prog, a); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.cur = a
	r.base = aff.CloneAffinity()
	r.mu.Unlock()
	return nil
}

// SetCurrent adopts an externally computed assignment (and the matrix
// it was computed from) as the reconciler's baseline — for programs
// placed by the automatic schedule hook before the loop starts.
func (r *Reconciler) SetCurrent(a *Assignment, m *comm.Matrix) error {
	if a == nil || m == nil {
		return fmt.Errorf("placement: adaptive: SetCurrent needs an assignment and its matrix")
	}
	r.mu.Lock()
	r.cur = a.Clone()
	r.base = m.Clone()
	r.mu.Unlock()
	return nil
}

// SetCurrentAffinity is SetCurrent for baselines that live on the
// affinity surface — restored fleet snapshots and sparse primes.
func (r *Reconciler) SetCurrentAffinity(a *Assignment, aff comm.Affinity) error {
	if a == nil || aff == nil {
		return fmt.Errorf("placement: adaptive: SetCurrentAffinity needs an assignment and its affinity")
	}
	r.mu.Lock()
	r.cur = a.Clone()
	r.base = aff.CloneAffinity()
	r.mu.Unlock()
	return nil
}

// Current returns the assignment in force (the caller's copy).
func (r *Reconciler) Current() *Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.Clone()
}

// Baseline returns a copy of the matrix backing the current assignment
// — the drift baseline — or nil before Prime/SetCurrent. Durability
// layers persist it next to the assignment so a restored reconciler
// measures drift against what the adopted mapping was computed from.
func (r *Reconciler) Baseline() *comm.Matrix {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.base == nil {
		return nil
	}
	if m, ok := r.base.(*comm.Matrix); ok {
		return m.Clone()
	}
	return r.base.Dense()
}

// BaselineAffinity is Baseline without the densification: the affinity
// backing the current assignment (the caller's copy), or nil before
// Prime/SetCurrent. Sparse-aware durability layers persist this form so
// a 10k-task baseline round-trips without an n² slab.
func (r *Reconciler) BaselineAffinity() comm.Affinity {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.base == nil {
		return nil
	}
	return r.base.CloneAffinity()
}

// Stats returns a snapshot of the reconciler's counters.
func (r *Reconciler) Stats() AdaptiveStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Epoch runs one reconciliation step: sample the source's next
// window, measure drift, and — when it crosses the threshold —
// recompute and adopt if the modeled gain over the horizon beats the
// modeled migration cost.
func (r *Reconciler) Epoch() (*EpochReport, error) {
	r.mu.Lock()
	cur, base := r.cur, r.base
	r.mu.Unlock()
	if cur == nil || base == nil {
		return nil, fmt.Errorf("placement: adaptive: epoch before Prime/SetCurrent")
	}

	var window comm.Affinity
	if r.asrc != nil {
		var err error
		window, err = r.eng.ExtractAffinity(r.asrc)
		if err != nil {
			return nil, err
		}
	} else {
		m, err := r.eng.Extract(r.src)
		if err != nil {
			return nil, err
		}
		window = m
	}

	rep := &EpochReport{WindowBytes: window.Total()}
	finish := func() (*EpochReport, error) {
		r.mu.Lock()
		r.stats.Epochs++
		rep.Epoch = r.stats.Epochs
		if rep.WindowBytes >= r.cfg.MinWindowBytes {
			r.stats.LastDrift = rep.Drift
		}
		if rep.Recomputed || rep.Held {
			r.stats.DriftEpochs++
		}
		if rep.Recomputed {
			if rep.Adopted {
				r.stats.Remaps++
			} else {
				r.stats.Rejected++
			}
		}
		rep.Assignment = r.cur.Clone()
		r.mu.Unlock()
		return rep, nil
	}

	// Tick the hysteresis clock: the cooldown set by an adopted remap
	// expires one epoch at a time, whatever the epoch measures.
	r.mu.Lock()
	cooling := r.cooldown > 0
	if cooling {
		r.cooldown--
	}
	r.mu.Unlock()

	if rep.WindowBytes < r.cfg.MinWindowBytes {
		// Idle epoch: nothing flowed, nothing to react to. The
		// over-threshold streak does not survive idleness.
		r.mu.Lock()
		r.overStreak = 0
		r.mu.Unlock()
		return finish()
	}
	// Drift dispatch. Partitioned mappings measure per partition — the
	// signal that later scopes the recompute to the drifted subtrees.
	// Dense-vs-dense keeps the original Drift path bit-for-bit; mixed
	// or sparse representations go through DriftAffinity.
	bm, baseDense := base.(*comm.Matrix)
	wm, winDense := window.(*comm.Matrix)
	partitioned := cur.Partitions != nil && len(cur.Partitions.Parts) > 0
	if partitioned {
		rep.PartitionDrifts = PartitionDrift(cur.Partitions, base, window)
		for _, d := range rep.PartitionDrifts {
			if d > rep.Drift {
				rep.Drift = d
			}
		}
	} else if baseDense && winDense {
		rep.Drift = Drift(bm, wm)
	} else {
		rep.Drift = DriftAffinity(base, window)
	}
	if rep.Drift <= r.cfg.DriftThreshold {
		r.mu.Lock()
		r.overStreak = 0
		r.mu.Unlock()
		return finish()
	}

	// Drift alarm. The adopt hysteresis gates the (expensive) recompute
	// and model: the alarm must persist AdoptAfter consecutive epochs,
	// and any post-remap cooldown must have expired, before a candidate
	// is even computed — an oscillating workload is held, not chased.
	r.mu.Lock()
	r.overStreak++
	streak := r.overStreak
	r.mu.Unlock()
	if streak < r.cfg.AdoptAfter || cooling {
		rep.Held = true
		return finish()
	}

	// Recompute. A partitioned mapping re-places only the drifted
	// subtrees — everything else keeps its placement verbatim, which is
	// the whole point of tracking drift per partition. Unpartitioned
	// mappings recompute through the registry as before (the mapping
	// cache makes oscillation back to a known pattern cheap).
	var candidate *Assignment
	var err error
	if partitioned {
		var drifted []int
		for pi, d := range rep.PartitionDrifts {
			if d > r.cfg.DriftThreshold {
				drifted = append(drifted, pi)
			}
		}
		rep.RemappedPartitions = drifted
		candidate, err = r.remapPartitions(cur, window, drifted)
	} else if winDense {
		candidate, err = r.eng.Compute(r.cfg.Strategy, wm, 0, r.cfg.Options)
	} else {
		candidate, _, err = r.eng.ComputeAffinity(r.cfg.Strategy, window, 0, r.cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	rep.Recomputed = true

	var gain, cost float64
	if winDense && !partitioned {
		gain, cost, err = r.model(wm, cur, candidate)
	} else {
		gain, cost, err = r.modelSparse(window, cur, candidate)
	}
	if err != nil {
		return nil, err
	}
	rep.GainSeconds, rep.CostSeconds = gain, cost
	if gain <= cost {
		return finish()
	}

	if r.prog != nil {
		if err := Bind(r.prog, candidate); err != nil {
			return nil, err
		}
	}
	rep.Adopted = true
	rep.MovedTasks = movedTasks(cur, candidate)
	r.mu.Lock()
	r.cur = candidate
	r.base = window.CloneAffinity()
	r.overStreak = 0
	r.cooldown = r.cfg.CooldownEpochs
	r.mu.Unlock()
	return finish()
}

// model compares cur and candidate under the windowed traffic: the
// modeled seconds each spends serving Horizon iterations of the
// observed pattern, and the one-time migration cost of switching.
func (r *Reconciler) model(window *comm.Matrix, cur, candidate *Assignment) (gain, cost float64, err error) {
	w := r.modelWorkload(window)
	oldRes, err := perfsim.Simulate(r.eng.Topology(), w, r.eng.SimPlacement(cur, r.cfg.Seed))
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling current mapping: %w", err)
	}
	newRes, err := perfsim.Simulate(r.eng.Topology(), w, r.eng.SimPlacement(candidate, r.cfg.Seed))
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling candidate mapping: %w", err)
	}
	gain = oldRes.Seconds - newRes.Seconds
	if cur.Unbound || candidate.Unbound {
		// No pinned state to move: adopting away from (or to) the OS
		// scheduler only pays the modeling delta.
		return gain, 0, nil
	}
	cost, err = perfsim.MigrationCost(r.eng.Topology(), w, cur.ComputePU, candidate.ComputePU)
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: migration cost: %w", err)
	}
	return gain, cost, nil
}

// remapPartitions builds the candidate for a partitioned mapping by
// re-placing only the drifted partitions in place: every task outside
// them keeps its PU verbatim, and MigrationCost later charges only the
// movers.
func (r *Reconciler) remapPartitions(cur *Assignment, window comm.Affinity, drifted []int) (*Assignment, error) {
	mp := cur.Mapping(r.eng.Topology())
	if mp == nil || mp.Partitions == nil {
		return nil, fmt.Errorf("placement: adaptive: remap of an unpartitioned mapping")
	}
	for _, pi := range drifted {
		if pi < 0 || pi >= len(mp.Partitions.Parts) {
			return nil, fmt.Errorf("placement: adaptive: partition index %d out of range [0,%d)", pi, len(mp.Partitions.Parts))
		}
		if err := treematch.RemapPartition(mp, window, mp.Partitions.Parts[pi], r.cfg.Options); err != nil {
			return nil, err
		}
	}
	return fromMapping(cur.Strategy, mp), nil
}

// modelSparse is model on the affinity surface: the full cycle-level
// simulator needs a dense matrix, so sparse (and partitioned) epochs
// score candidates with the latency-only perfsim.CommSeconds model over
// the window's nonzeros — O(nnz), comparable across bindings of the
// same window, which is exactly the question here — and charge
// migration through the same MigrationCost as the dense path.
func (r *Reconciler) modelSparse(window comm.Affinity, cur, candidate *Assignment) (gain, cost float64, err error) {
	if cur.Unbound || candidate.Unbound {
		// The latency model scores pinned PU vectors; an unbound side
		// has none. Densify and use the full model — unbound strategies
		// are never the partitioned 10k-task path.
		return r.model(window.Dense(), cur, candidate)
	}
	top := r.eng.Topology()
	oldS, err := perfsim.CommSeconds(top, window, cur.ComputePU)
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling current mapping: %w", err)
	}
	newS, err := perfsim.CommSeconds(top, window, candidate.ComputePU)
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling candidate mapping: %w", err)
	}
	// The window spans WindowIterations iterations; the candidate
	// serves Horizon of them.
	gain = (oldS - newS) * float64(r.cfg.Horizon) / float64(r.cfg.WindowIterations)
	cost, err = perfsim.MigrationCost(top, r.migrationWorkload(window.Order()), cur.ComputePU, candidate.ComputePU)
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: migration cost: %w", err)
	}
	return gain, cost, nil
}

// migrationWorkload synthesizes the per-thread state MigrationCost
// charges for (working sets, wakeups) without a dense Comm matrix —
// MigrationCost never reads Comm.
func (r *Reconciler) migrationWorkload(n int) *perfsim.Workload {
	var w perfsim.Workload
	if r.cfg.Workload != nil {
		w = *r.cfg.Workload
		return &w
	}
	w.Name = "adaptive-epoch"
	threads := make([]perfsim.Thread, n)
	for i := range threads {
		threads[i] = perfsim.Thread{
			ComputeCycles: 5e5,
			WorkingSet:    1 << 20,
			MemoryTraffic: 1 << 16,
		}
	}
	w.Threads = threads
	return &w
}

// modelWorkload builds the per-epoch performance-model input: the
// configured template (or a synthesized communication-dominated one)
// carrying the window's per-iteration traffic over the horizon.
func (r *Reconciler) modelWorkload(window *comm.Matrix) *perfsim.Workload {
	n := window.Order()
	var w perfsim.Workload
	if r.cfg.Workload != nil {
		w = *r.cfg.Workload
	} else {
		w.Name = "adaptive-epoch"
		threads := make([]perfsim.Thread, n)
		for i := range threads {
			threads[i] = perfsim.Thread{
				ComputeCycles: 5e5,
				WorkingSet:    1 << 20,
				MemoryTraffic: 1 << 16,
			}
		}
		w.Threads = threads
	}
	perIter := window
	if r.cfg.WindowIterations > 1 {
		perIter = window.Clone()
		scale := 1 / float64(r.cfg.WindowIterations)
		for i := 0; i < n; i++ {
			row := perIter.RowView(i)
			for j := range row {
				row[j] *= scale
			}
		}
	}
	w.Comm = perIter
	w.Iterations = r.cfg.Horizon
	return &w
}

// movedTasks diffs two assignments slot for slot and returns the
// ascending task indices whose compute PU, control PU or core changed —
// the set a partition-scoped remap actually moved. It returns nil
// (unknown) rather than a possibly-wrong set when the two are not
// comparable: either side nil or unbound, different orders, or
// auxiliary slices present on one side only.
func movedTasks(old, new_ *Assignment) []int {
	if old == nil || new_ == nil || old.Unbound || new_.Unbound {
		return nil
	}
	n := len(old.ComputePU)
	if n == 0 || len(new_.ComputePU) != n ||
		len(old.ControlPU) != len(new_.ControlPU) ||
		len(old.CoreOf) != len(new_.CoreOf) {
		return nil
	}
	moved := []int{}
	for t := 0; t < n; t++ {
		if old.ComputePU[t] != new_.ComputePU[t] ||
			(len(old.ControlPU) > 0 && old.ControlPU[t] != new_.ControlPU[t]) ||
			(len(old.CoreOf) > 0 && old.CoreOf[t] != new_.CoreOf[t]) {
			moved = append(moved, t)
		}
	}
	return moved
}

// Run drives Epoch on a ticker until the context is cancelled,
// reporting each epoch to report (which may be nil). Errors stop the
// loop and are returned.
func (r *Reconciler) Run(ctx context.Context, every time.Duration, report func(*EpochReport)) error {
	if every <= 0 {
		return fmt.Errorf("placement: adaptive: non-positive epoch interval %v", every)
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			rep, err := r.Epoch()
			if err != nil {
				return err
			}
			if report != nil {
				report(rep)
			}
		}
	}
}
