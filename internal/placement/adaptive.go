package placement

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/perfsim"
)

// This file closes the placement loop. The paper computes a mapping
// once, at the schedule barrier, from the declared dependency graph —
// and its own evaluation shows dynamic traffic drifting away from
// that graph is exactly where bound placement loses ground. The
// Reconciler turns the one-shot pipeline into a feedback loop: every
// epoch it samples an observed-traffic window, measures how far the
// traffic has drifted from the matrix backing the current assignment,
// recomputes through the same strategy registry when the drift
// crosses a threshold, and adopts the new mapping only when the
// perfsim-modeled gain over the remaining horizon beats the modeled
// migration cost.

// AdaptiveStats counts a reconciler's activity. It is embedded in
// ServiceStats so the service surface (and the wire protocol, schema
// v3) reports the feedback loop next to the cache counters.
type AdaptiveStats struct {
	// Epochs is the number of reconciliation epochs run.
	Epochs uint64
	// DriftEpochs is the number of epochs whose drift exceeded the
	// threshold — each triggered a recompute, unless the adopt
	// hysteresis held it (see AdaptiveConfig.AdoptAfter).
	DriftEpochs uint64
	// Remaps is the number of adopted re-placements.
	Remaps uint64
	// Rejected is the number of recomputed mappings discarded because
	// the modeled gain did not cover the modeled migration cost.
	Rejected uint64
	// LastDrift is the drift measured by the most recent epoch, in
	// [0, 1]. Aggregated stats (a service with several reconcilers, a
	// fleet) report the maximum across contributors with activity —
	// the alarm view: "how bad is the worst drift anyone measured
	// last" — which is deterministic regardless of iteration order.
	LastDrift float64
}

// merge accumulates other into st (fleet aggregation): counters sum,
// LastDrift takes the maximum over contributors that have run at
// least one epoch, so an idle machine does not zero out a busy one
// and map-iteration order cannot flap the result. st.Epochs == 0
// before accumulation means no active contributor has merged yet.
func (st *AdaptiveStats) merge(other AdaptiveStats) {
	if other.Epochs > 0 && (st.Epochs == 0 || other.LastDrift > st.LastDrift) {
		st.LastDrift = other.LastDrift
	}
	st.Epochs += other.Epochs
	st.DriftEpochs += other.DriftEpochs
	st.Remaps += other.Remaps
	st.Rejected += other.Rejected
}

// Drift measures how far communication matrix b has moved from a, as
// half the L1 distance between the two symmetrized, volume-normalized
// matrices: 0 means identical structure (scaling the same pattern up
// or down is not drift), 1 means the traffic now flows entirely
// between different pairs. One all-zero matrix against a non-zero one
// is full drift; two all-zero matrices agree.
func Drift(a, b *comm.Matrix) float64 {
	if a == nil || b == nil || a.Order() != b.Order() {
		return 1
	}
	sa, sb := a.Symmetrized(), b.Symmetrized()
	ta, tb := sa.Total(), sb.Total()
	if ta == 0 && tb == 0 {
		return 0
	}
	if ta == 0 || tb == 0 {
		return 1
	}
	n := a.Order()
	var dist float64
	for i := 0; i < n; i++ {
		ra, rb := sa.RowView(i), sb.RowView(i)
		for j := range ra {
			dist += math.Abs(ra[j]/ta - rb[j]/tb)
		}
	}
	return dist / 2
}

// AdaptiveConfig tunes a Reconciler.
type AdaptiveConfig struct {
	// Strategy names the registered strategy re-placements run through
	// (default TreeMatch).
	Strategy string
	// Options tunes the strategy.
	Options Options
	// DriftThreshold is the drift above which an epoch recomputes the
	// mapping (default 0.25).
	DriftThreshold float64
	// Horizon is the number of iterations a newly adopted mapping is
	// expected to serve — the window over which the modeled gain must
	// amortize the migration cost (default 50).
	Horizon int
	// WindowIterations is how many workload iterations one observed
	// window spans, used to scale the window down to per-iteration
	// volumes for the performance model (default 1).
	WindowIterations int
	// MinWindowBytes skips reconciliation for windows below this
	// volume — an idle program should neither count as drifted nor
	// trigger remaps (default 1, i.e. skip only empty windows).
	MinWindowBytes float64
	// AdoptAfter is the number of consecutive over-threshold epochs
	// required before a candidate mapping may be adopted (default 1:
	// adopt on the first alarm). An oscillating workload whose phases
	// are shorter than AdoptAfter epochs never accumulates the streak,
	// so the reconciler rides out the flapping instead of chasing it.
	AdoptAfter int
	// CooldownEpochs suppresses adoption for this many epochs after a
	// remap (default 0: none). Together with AdoptAfter this is the
	// adopt hysteresis: a remap is followed by a quiet period, and the
	// drift must then prove itself persistent again before the next
	// one.
	CooldownEpochs int
	// Workload is the performance-model template for gain/cost
	// modeling; its Comm and Iterations are overridden per epoch. Nil
	// synthesizes a communication-dominated template with a modest
	// per-thread working set.
	Workload *perfsim.Workload
	// Seed seeds the simulated OS scheduler when modeling unbound
	// assignments.
	Seed int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Strategy == "" {
		c.Strategy = TreeMatch
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.25
	}
	if c.Horizon == 0 {
		c.Horizon = 50
	}
	if c.WindowIterations == 0 {
		c.WindowIterations = 1
	}
	if c.MinWindowBytes == 0 {
		c.MinWindowBytes = 1
	}
	if c.AdoptAfter == 0 {
		c.AdoptAfter = 1
	}
	return c
}

// EpochReport describes one reconciliation epoch.
type EpochReport struct {
	// Epoch is the 1-based epoch index.
	Epoch uint64
	// WindowBytes is the total volume of the observed window.
	WindowBytes float64
	// Drift is the measured drift against the matrix backing the
	// current assignment.
	Drift float64
	// Recomputed is true when the drift crossed the threshold and a
	// candidate mapping was computed.
	Recomputed bool
	// Held is true when the drift crossed the threshold but the adopt
	// hysteresis withheld the recompute: the over-threshold streak has
	// not yet reached AdoptAfter, or a recent remap's cooldown is still
	// running.
	Held bool
	// Adopted is true when the candidate was bound.
	Adopted bool
	// GainSeconds is the modeled time saved over the horizon by the
	// candidate (meaningful when Recomputed).
	GainSeconds float64
	// CostSeconds is the modeled one-time migration cost of switching.
	CostSeconds float64
	// Assignment is the mapping in force after the epoch.
	Assignment *Assignment
}

// Reconciler is the epoch-driven adaptive re-placement engine for one
// program on one machine. Drive it by calling Epoch at whatever cadence
// suits the application (or Run for a ticker-driven loop). It is safe
// for concurrent use with the program it re-binds.
type Reconciler struct {
	eng  *Engine
	src  MatrixSource
	prog *orwl.Program // nil: model-only, no binding commits
	cfg  AdaptiveConfig

	mu    sync.Mutex
	cur   *Assignment
	base  *comm.Matrix // matrix backing cur — what drift is measured against
	stats AdaptiveStats

	// Adopt hysteresis state: consecutive over-threshold epochs seen,
	// and epochs left in the post-remap cooldown.
	overStreak int
	cooldown   int
}

// NewReconciler builds a reconciler re-placing prog (may be nil for
// model-only use) on eng's machine, fed by src — typically
// ObservedWindow(prog). Prime it with an initial mapping before the
// first Epoch.
func NewReconciler(eng *Engine, src MatrixSource, prog *orwl.Program, cfg AdaptiveConfig) (*Reconciler, error) {
	if eng == nil {
		return nil, fmt.Errorf("placement: adaptive: nil engine")
	}
	if src == nil {
		return nil, fmt.Errorf("placement: adaptive: nil matrix source")
	}
	cfg = cfg.withDefaults()
	if _, ok := Lookup(cfg.Strategy); !ok {
		return nil, fmt.Errorf("placement: adaptive: unknown strategy %q", cfg.Strategy)
	}
	return &Reconciler{eng: eng, src: src, prog: prog, cfg: cfg}, nil
}

// Prime computes and commits the initial assignment from a source —
// typically Declared(prog), the paper's schedule-barrier mapping —
// and records its matrix as the drift baseline.
func (r *Reconciler) Prime(src MatrixSource) error {
	m, err := r.eng.Extract(src)
	if err != nil {
		return err
	}
	a, err := r.eng.Compute(r.cfg.Strategy, m, 0, r.cfg.Options)
	if err != nil {
		return err
	}
	if r.prog != nil {
		if err := Bind(r.prog, a); err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.cur = a
	r.base = m.Clone()
	r.mu.Unlock()
	return nil
}

// SetCurrent adopts an externally computed assignment (and the matrix
// it was computed from) as the reconciler's baseline — for programs
// placed by the automatic schedule hook before the loop starts.
func (r *Reconciler) SetCurrent(a *Assignment, m *comm.Matrix) error {
	if a == nil || m == nil {
		return fmt.Errorf("placement: adaptive: SetCurrent needs an assignment and its matrix")
	}
	r.mu.Lock()
	r.cur = a.Clone()
	r.base = m.Clone()
	r.mu.Unlock()
	return nil
}

// Current returns the assignment in force (the caller's copy).
func (r *Reconciler) Current() *Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.Clone()
}

// Baseline returns a copy of the matrix backing the current assignment
// — the drift baseline — or nil before Prime/SetCurrent. Durability
// layers persist it next to the assignment so a restored reconciler
// measures drift against what the adopted mapping was computed from.
func (r *Reconciler) Baseline() *comm.Matrix {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.base == nil {
		return nil
	}
	return r.base.Clone()
}

// Stats returns a snapshot of the reconciler's counters.
func (r *Reconciler) Stats() AdaptiveStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Epoch runs one reconciliation step: sample the source's next
// window, measure drift, and — when it crosses the threshold —
// recompute and adopt if the modeled gain over the horizon beats the
// modeled migration cost.
func (r *Reconciler) Epoch() (*EpochReport, error) {
	r.mu.Lock()
	cur, base := r.cur, r.base
	r.mu.Unlock()
	if cur == nil || base == nil {
		return nil, fmt.Errorf("placement: adaptive: epoch before Prime/SetCurrent")
	}

	window, err := r.eng.Extract(r.src)
	if err != nil {
		return nil, err
	}

	rep := &EpochReport{WindowBytes: window.Total()}
	finish := func() (*EpochReport, error) {
		r.mu.Lock()
		r.stats.Epochs++
		rep.Epoch = r.stats.Epochs
		if rep.WindowBytes >= r.cfg.MinWindowBytes {
			r.stats.LastDrift = rep.Drift
		}
		if rep.Recomputed || rep.Held {
			r.stats.DriftEpochs++
		}
		if rep.Recomputed {
			if rep.Adopted {
				r.stats.Remaps++
			} else {
				r.stats.Rejected++
			}
		}
		rep.Assignment = r.cur.Clone()
		r.mu.Unlock()
		return rep, nil
	}

	// Tick the hysteresis clock: the cooldown set by an adopted remap
	// expires one epoch at a time, whatever the epoch measures.
	r.mu.Lock()
	cooling := r.cooldown > 0
	if cooling {
		r.cooldown--
	}
	r.mu.Unlock()

	if rep.WindowBytes < r.cfg.MinWindowBytes {
		// Idle epoch: nothing flowed, nothing to react to. The
		// over-threshold streak does not survive idleness.
		r.mu.Lock()
		r.overStreak = 0
		r.mu.Unlock()
		return finish()
	}
	rep.Drift = Drift(base, window)
	if rep.Drift <= r.cfg.DriftThreshold {
		r.mu.Lock()
		r.overStreak = 0
		r.mu.Unlock()
		return finish()
	}

	// Drift alarm. The adopt hysteresis gates the (expensive) recompute
	// and model: the alarm must persist AdoptAfter consecutive epochs,
	// and any post-remap cooldown must have expired, before a candidate
	// is even computed — an oscillating workload is held, not chased.
	r.mu.Lock()
	r.overStreak++
	streak := r.overStreak
	r.mu.Unlock()
	if streak < r.cfg.AdoptAfter || cooling {
		rep.Held = true
		return finish()
	}

	// Recompute through the registry (the mapping cache makes
	// oscillation back to a known pattern cheap).
	candidate, err := r.eng.Compute(r.cfg.Strategy, window, 0, r.cfg.Options)
	if err != nil {
		return nil, err
	}
	rep.Recomputed = true

	gain, cost, err := r.model(window, cur, candidate)
	if err != nil {
		return nil, err
	}
	rep.GainSeconds, rep.CostSeconds = gain, cost
	if gain <= cost {
		return finish()
	}

	if r.prog != nil {
		if err := Bind(r.prog, candidate); err != nil {
			return nil, err
		}
	}
	rep.Adopted = true
	r.mu.Lock()
	r.cur = candidate
	r.base = window.Clone()
	r.overStreak = 0
	r.cooldown = r.cfg.CooldownEpochs
	r.mu.Unlock()
	return finish()
}

// model compares cur and candidate under the windowed traffic: the
// modeled seconds each spends serving Horizon iterations of the
// observed pattern, and the one-time migration cost of switching.
func (r *Reconciler) model(window *comm.Matrix, cur, candidate *Assignment) (gain, cost float64, err error) {
	w := r.modelWorkload(window)
	oldRes, err := perfsim.Simulate(r.eng.Topology(), w, r.eng.SimPlacement(cur, r.cfg.Seed))
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling current mapping: %w", err)
	}
	newRes, err := perfsim.Simulate(r.eng.Topology(), w, r.eng.SimPlacement(candidate, r.cfg.Seed))
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: modeling candidate mapping: %w", err)
	}
	gain = oldRes.Seconds - newRes.Seconds
	if cur.Unbound || candidate.Unbound {
		// No pinned state to move: adopting away from (or to) the OS
		// scheduler only pays the modeling delta.
		return gain, 0, nil
	}
	cost, err = perfsim.MigrationCost(r.eng.Topology(), w, cur.ComputePU, candidate.ComputePU)
	if err != nil {
		return 0, 0, fmt.Errorf("placement: adaptive: migration cost: %w", err)
	}
	return gain, cost, nil
}

// modelWorkload builds the per-epoch performance-model input: the
// configured template (or a synthesized communication-dominated one)
// carrying the window's per-iteration traffic over the horizon.
func (r *Reconciler) modelWorkload(window *comm.Matrix) *perfsim.Workload {
	n := window.Order()
	var w perfsim.Workload
	if r.cfg.Workload != nil {
		w = *r.cfg.Workload
	} else {
		w.Name = "adaptive-epoch"
		threads := make([]perfsim.Thread, n)
		for i := range threads {
			threads[i] = perfsim.Thread{
				ComputeCycles: 5e5,
				WorkingSet:    1 << 20,
				MemoryTraffic: 1 << 16,
			}
		}
		w.Threads = threads
	}
	perIter := window
	if r.cfg.WindowIterations > 1 {
		perIter = window.Clone()
		scale := 1 / float64(r.cfg.WindowIterations)
		for i := 0; i < n; i++ {
			row := perIter.RowView(i)
			for j := range row {
				row[j] *= scale
			}
		}
	}
	w.Comm = perIter
	w.Iterations = r.cfg.Horizon
	return &w
}

// Run drives Epoch on a ticker until the context is cancelled,
// reporting each epoch to report (which may be nil). Errors stop the
// loop and are returned.
func (r *Reconciler) Run(ctx context.Context, every time.Duration, report func(*EpochReport)) error {
	if every <= 0 {
		return fmt.Errorf("placement: adaptive: non-positive epoch interval %v", every)
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			rep, err := r.Epoch()
			if err != nil {
				return err
			}
			if report != nil {
				report(rep)
			}
		}
	}
}
