package placement

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"orwlplace/internal/topology"
)

// MultiService routes placement requests across a fleet of named
// machines — one Engine (and therefore one mapping cache and one
// singleflight) per topology. It is the daemon-side answer to the
// paper's Table I testbeds: instead of one daemon process per machine
// and one RPC per request, a single service holds every topology,
// `PlaceRequest.Machine` selects one, and `PlaceBatch` fans a request
// slice across the fleet concurrently.
//
// The first machine added is the default (overridable with
// SetDefault): requests that name no machine — which is every schema
// v1 request — route there, so pre-fleet clients keep working
// unchanged.
type MultiService struct {
	mu    sync.RWMutex
	svcs  map[string]*LocalService
	order []string // registration order; Machines() lists default first
	def   string
}

var _ Service = (*MultiService)(nil)

// NewMultiService returns an empty fleet router; add machines with
// AddMachine/AddEngine before serving.
func NewMultiService() *MultiService {
	return &MultiService{svcs: make(map[string]*LocalService)}
}

// AddEngine registers an engine under a fleet machine name. The first
// registration becomes the default machine. Names are identity keys
// for routing, so duplicates are an error.
func (m *MultiService) AddEngine(name string, eng *Engine) error {
	if name == "" {
		return fmt.Errorf("placement: fleet machine needs a name")
	}
	if eng == nil {
		return fmt.Errorf("placement: nil engine for fleet machine %q", name)
	}
	svc, err := NewLocalService(eng)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.svcs[name]; dup {
		return fmt.Errorf("placement: fleet machine %q already registered", name)
	}
	m.svcs[name] = svc
	m.order = append(m.order, name)
	if m.def == "" {
		m.def = name
	}
	return nil
}

// AddMachine builds an engine for the topology and registers it under
// the fleet name — the convenience most callers (cmd/orwlnetd, the
// facade) want.
func (m *MultiService) AddMachine(name string, top *topology.Topology, opts ...EngineOption) error {
	eng, err := NewEngine(top, opts...)
	if err != nil {
		return err
	}
	return m.AddEngine(name, eng)
}

// SetDefault changes which machine unnamed (and v1) requests route to.
func (m *MultiService) SetDefault(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.svcs[name]; !ok {
		return fmt.Errorf("placement: unknown fleet machine %q (have %v)", name, m.machinesLocked())
	}
	m.def = name
	return nil
}

// DefaultMachine returns the name unnamed requests route to ("" while
// the fleet is empty).
func (m *MultiService) DefaultMachine() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.def
}

// Machines lists the fleet machine names, default first, the rest in
// registration order.
func (m *MultiService) Machines() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.machinesLocked()
}

func (m *MultiService) machinesLocked() []string {
	out := make([]string, 0, len(m.order))
	if m.def != "" {
		out = append(out, m.def)
	}
	for _, name := range m.order {
		if name != m.def {
			out = append(out, name)
		}
	}
	return out
}

// service resolves a machine name ("" = default) to its per-machine
// service.
func (m *MultiService) service(name string) (*LocalService, string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if name == "" {
		name = m.def
	}
	svc, ok := m.svcs[name]
	if !ok {
		known := m.machinesLocked()
		sort.Strings(known)
		return nil, "", fmt.Errorf("placement: unknown machine %q (have %v)", name, known)
	}
	return svc, name, nil
}

// MachineService returns the named machine's in-process service (""
// selects the default) — the handle an adaptive reconciler attaches
// to when the program places through a fleet rather than a
// single-machine service.
func (m *MultiService) MachineService(name string) (*LocalService, error) {
	svc, _, err := m.service(name)
	return svc, err
}

// Place implements Service: the request routes to the machine it
// names, or to the default machine when it names none (every v1
// request does).
func (m *MultiService) Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("placement: nil request")
	}
	svc, name, err := m.service(req.Machine)
	if err != nil {
		return nil, err
	}
	// Routing is resolved here: the per-machine service gets a request
	// with the selector cleared (its own machine-name check is for
	// direct, fleet-less deployments), and the caller's request is
	// never mutated.
	routed := *req
	routed.Machine = ""
	resp, err := svc.Place(ctx, &routed)
	if err != nil {
		return nil, err
	}
	// The fleet name is the routing key (e.g. "tinyht"), which may
	// differ from the topology's display name ("TinyHT"); report the
	// name the caller can route with.
	resp.Machine = name
	return resp, nil
}

// PlaceBatch implements Service: the slots fan out concurrently, each
// onto its machine's engine. Identical slots on one machine collapse
// into a single compute through that engine's singleflight; slots on
// different machines never contend.
func (m *MultiService) PlaceBatch(ctx context.Context, reqs []*PlaceRequest) ([]*PlaceResponse, error) {
	return fanOutBatch(ctx, m.Place, reqs)
}

// Topology implements Service: the default machine's tree, as a deep
// copy (see LocalService.Topology).
func (m *MultiService) Topology(ctx context.Context) (*topology.Topology, error) {
	svc, _, err := m.service("")
	if err != nil {
		return nil, err
	}
	return svc.Topology(ctx)
}

// Stats implements Service: the default machine's identity, the fleet
// listing, and traffic counters aggregated across every machine.
func (m *MultiService) Stats(ctx context.Context) (ServiceStats, error) {
	if err := ctx.Err(); err != nil {
		return ServiceStats{}, err
	}
	def, _, err := m.service("")
	if err != nil {
		return ServiceStats{}, err
	}
	st := ServiceStats{
		TopologyName:      def.Engine().Topology().Attrs.Name,
		TopologySignature: def.Engine().TopologySignature(),
		Strategies:        Names(),
		Machines:          m.Machines(),
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, svc := range m.svcs {
		st.Places += svc.places.Load()
		cs := svc.Engine().Stats()
		st.Cache.Hits += cs.Hits
		st.Cache.Misses += cs.Misses
		st.Cache.Entries += cs.Entries
		st.Adaptive.merge(svc.adaptiveStats())
	}
	return st, nil
}

// MachineStats returns the per-machine service stats, keyed by fleet
// name — the disaggregated view behind the aggregate Stats.
func (m *MultiService) MachineStats(ctx context.Context) (map[string]ServiceStats, error) {
	m.mu.RLock()
	svcs := make(map[string]*LocalService, len(m.svcs))
	for name, svc := range m.svcs {
		svcs[name] = svc
	}
	m.mu.RUnlock()
	out := make(map[string]ServiceStats, len(svcs))
	for name, svc := range svcs {
		st, err := svc.Stats(ctx)
		if err != nil {
			return nil, err
		}
		out[name] = st
	}
	return out, nil
}
