package placement

import (
	"testing"

	"orwlplace/internal/orwl"
)

// movedTasks feeds the delta remap push: nil means "diff unknown, ship
// full frames", an empty non-nil slice means "nothing moved".

func TestMovedTasks(t *testing.T) {
	base := &Assignment{
		ComputePU: []int{0, 1, 2, 3},
		ControlPU: []int{-1, -1, -1, -1},
		CoreOf:    []int{0, 0, 1, 1},
	}

	// Identical assignments: an empty, non-nil diff.
	if mt := movedTasks(base, base.Clone()); mt == nil || len(mt) != 0 {
		t.Fatalf("identical assignments diff = %v, want empty non-nil", mt)
	}

	// A compute move, a control move and a core move each count.
	next := base.Clone()
	next.ComputePU[1] = 7
	next.ControlPU[2] = 5
	next.CoreOf[3] = 2
	if mt := movedTasks(base, next); len(mt) != 3 || mt[0] != 1 || mt[1] != 2 || mt[2] != 3 {
		t.Fatalf("diff = %v, want [1 2 3]", mt)
	}

	// Unknown diffs: nil inputs, unbound sides, shape mismatches.
	unbound := base.Clone()
	unbound.Unbound = true
	short := &Assignment{ComputePU: []int{0, 1}}
	noAux := &Assignment{ComputePU: []int{0, 1, 2, 3}}
	for name, pair := range map[string][2]*Assignment{
		"nil old":          {nil, base},
		"nil new":          {base, nil},
		"unbound old":      {unbound, base},
		"unbound new":      {base, unbound},
		"order mismatch":   {base, short},
		"aux shape change": {base, noAux},
	} {
		if mt := movedTasks(pair[0], pair[1]); mt != nil {
			t.Fatalf("%s: diff = %v, want nil (unknown)", name, mt)
		}
	}
}

func TestBindTasks(t *testing.T) {
	a := &Assignment{
		Strategy:  TreeMatch,
		ComputePU: []int{1, 2, 3, 4},
		ControlPU: []int{-1, 5, -1, 6},
	}
	prog := orwl.MustProgram(4, "m")
	if err := BindTasks(prog, a, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	b := prog.Binding()
	if len(b) != 2 || b[1] != 2 || b[3] != 4 {
		t.Fatalf("binding = %v, want only tasks 1 and 3", b)
	}
	cb := prog.ControlBinding()
	if len(cb) != 2 || cb[1] != 5 || cb[3] != 6 {
		t.Fatalf("control binding = %v, want tasks 1 and 3", cb)
	}

	// -1 control slots stay with the OS: no control binding recorded.
	prog2 := orwl.MustProgram(4, "m")
	if err := BindTasks(prog2, a, []int{0}); err != nil {
		t.Fatal(err)
	}
	if cb := prog2.ControlBinding(); cb != nil {
		t.Fatalf("control binding = %v, want none for an OS-managed slot", cb)
	}

	// Out-of-range task ids are an error, not a partial bind.
	if err := BindTasks(prog, a, []int{4}); err == nil {
		t.Fatal("task beyond the assignment bound without error")
	}
	if err := BindTasks(prog, a, []int{-1}); err == nil {
		t.Fatal("negative task bound without error")
	}

	// An unbound assignment is a no-op (the OS places), not an error.
	prog3 := orwl.MustProgram(2, "m")
	if err := BindTasks(prog3, &Assignment{Unbound: true}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if prog3.Binding() != nil {
		t.Fatal("unbound assignment produced bindings")
	}

	// Nil program / assignment are refused.
	if err := BindTasks(nil, a, nil); err == nil {
		t.Fatal("nil program accepted")
	}
	if err := BindTasks(prog, nil, nil); err == nil {
		t.Fatal("nil assignment accepted")
	}
}
