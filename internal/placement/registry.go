package placement

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps strategy names to implementations. The built-in
// strategies register themselves at init time; experiment harnesses
// and tools iterate Names() so a newly registered strategy shows up
// in every comparison without touching the consumers.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Strategy)
	regOrder []string
)

// Register adds a strategy under its name. Registering a duplicate
// name is an error: strategies are identity-keyed in the mapping
// cache.
func Register(s Strategy) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("placement: register nil or unnamed strategy")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		return fmt.Errorf("placement: strategy %q already registered", s.Name())
	}
	registry[s.Name()] = s
	regOrder = append(regOrder, s.Name())
	return nil
}

// MustRegister is Register panicking on error, for init-time use.
func MustRegister(s Strategy) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup resolves a strategy by name.
func Lookup(name string) (Strategy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered strategy names in registration order
// (built-ins first, in their declaration order), so comparison tables
// keep a stable row order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// BoundNames returns the names of all strategies that produce an
// actual binding (everything but the unbound baselines), sorted with
// comm-oblivious strategies first — the candidate set when picking
// "the best environment binding" like the paper does for the OpenMP
// and MKL baselines.
func BoundNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for _, name := range regOrder {
		if s := registry[name]; !isUnbound(s) {
			out = append(out, name)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return !registry[out[i]].CommAware() && registry[out[j]].CommAware()
	})
	return out
}

// ObliviousNames returns the bound, matrix-oblivious strategies — the
// environment-variable policies (compact, scatter, ...) the paper
// compares the affinity module against.
func ObliviousNames() []string {
	var out []string
	for _, name := range BoundNames() {
		if s, _ := Lookup(name); !s.CommAware() {
			out = append(out, name)
		}
	}
	return out
}

// Unbinder is the optional interface an unbound strategy (one whose
// assignments carry no binding) implements so the Bound/Oblivious
// listings can exclude it.
type Unbinder interface {
	Unbound() bool
}

func isUnbound(s Strategy) bool {
	u, ok := s.(Unbinder)
	return ok && u.Unbound()
}

// OptionsInsensitive is the optional interface a strategy implements
// to declare its result does not depend on Options, letting the
// engine's cache share one entry across option values. Strategies
// that do not implement it are keyed on the options — at worst a
// duplicate entry, never a stale result.
type OptionsInsensitive interface {
	IgnoresOptions() bool
}

func usesOptions(s Strategy) bool {
	o, ok := s.(OptionsInsensitive)
	return !ok || !o.IgnoresOptions()
}
