package placement

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// ServiceVersion is the current placement request/response schema
// version. Requests carry the version they were built against so a
// newer client talking to an older service (or the reverse, over the
// wire) fails loudly instead of misdecoding fields.
const ServiceVersion = 1

// PlaceRequest asks a placement service for an assignment. It is the
// transport-agnostic unit: the in-process service consumes it
// directly, the orwlnet stub serialises it onto the wire.
type PlaceRequest struct {
	// Version is the schema version the request was built against.
	// Zero means the caller's current ServiceVersion.
	Version int
	// Strategy names a registered strategy ("treematch", "compact", ...).
	Strategy string
	// Entities is the number of entities to place. May be zero when
	// Matrix is set, in which case the matrix order is used.
	Entities int
	// Matrix is the communication matrix; nil for matrix-oblivious
	// strategies.
	Matrix *comm.Matrix
	// Options tunes the mapping algorithm.
	Options Options
}

// PlaceResponse carries the assignment plus the diagnostics a remote
// caller cannot observe: whether the mapping cache served the call,
// the modeled quality of the placement, and the service-side latency.
type PlaceResponse struct {
	// Version is the schema version of the response.
	Version int
	// Assignment is the computed placement.
	Assignment *Assignment
	// CacheHit is true when the assignment came from the mapping cache.
	CacheHit bool
	// Cost is the TreeMatch objective of the assignment (hop-weighted
	// communication volume); zero when no matrix was given or the
	// assignment is unbound.
	Cost float64
	// CrossNUMAVolume is the volume exchanged across NUMA nodes under
	// the assignment; zero under the same conditions as Cost.
	CrossNUMAVolume float64
	// Cache is a snapshot of the engine's cache counters after the call.
	Cache CacheStats
	// ElapsedNS is the service-side time spent computing, in
	// nanoseconds.
	ElapsedNS int64
}

// ServiceStats describes a placement service: the machine it places
// onto, the strategies it offers, and its traffic counters.
type ServiceStats struct {
	// TopologyName is the served machine's name.
	TopologyName string
	// TopologySignature fingerprints the served machine, so callers
	// can compare machines without fetching the tree.
	TopologySignature uint64
	// Strategies lists the strategy names the service accepts.
	Strategies []string
	// Places counts the Place calls served.
	Places uint64
	// Cache is a snapshot of the mapping-cache counters.
	Cache CacheStats
}

// Service is the placement-as-a-service surface: everything the
// paper's in-process affinity module needs, shaped so the
// implementation can live in another process or on another node. The
// in-process implementation is LocalService; orwlnet provides the
// remote stub.
type Service interface {
	// Place computes (or fetches from cache) an assignment for the
	// request.
	Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error)
	// Topology returns the machine the service places onto.
	Topology(ctx context.Context) (*topology.Topology, error)
	// Stats returns the service description and traffic counters.
	Stats(ctx context.Context) (ServiceStats, error)
}

// checkVersion validates a request's schema version and returns the
// effective one.
func checkVersion(v int) (int, error) {
	if v == 0 {
		return ServiceVersion, nil
	}
	if v < 0 || v > ServiceVersion {
		return 0, fmt.Errorf("placement: unsupported request version %d (service speaks <= %d)", v, ServiceVersion)
	}
	return v, nil
}

// LocalService implements Service directly on an Engine — the
// in-process deployment, and the backend cmd/orwlnetd exports over the
// wire.
type LocalService struct {
	eng    *Engine
	places atomic.Uint64
}

// NewLocalService wraps an engine as a Service.
func NewLocalService(e *Engine) (*LocalService, error) {
	if e == nil {
		return nil, fmt.Errorf("placement: nil engine")
	}
	return &LocalService{eng: e}, nil
}

// Engine exposes the wrapped engine (for binding and direct pipeline
// access in the owning process).
func (s *LocalService) Engine() *Engine { return s.eng }

// Place implements Service.
func (s *LocalService) Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("placement: nil request")
	}
	if _, err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	a, hit, err := s.eng.ComputeWithInfo(req.Strategy, req.Matrix, req.Entities, req.Options)
	if err != nil {
		return nil, err
	}
	s.places.Add(1)
	resp := &PlaceResponse{
		Version:    ServiceVersion,
		Assignment: a,
		CacheHit:   hit,
		Cache:      s.eng.Stats(),
		ElapsedNS:  time.Since(start).Nanoseconds(),
	}
	if req.Matrix != nil && !a.Unbound {
		// Quality diagnostics need both a matrix and an actual binding;
		// failures here are diagnostic-only and never fail the call.
		if c, cerr := treematch.Cost(s.eng.top, req.Matrix, a.ComputePU); cerr == nil {
			resp.Cost = c
		}
		if v, verr := treematch.CrossNUMAVolume(s.eng.top, req.Matrix, a.ComputePU); verr == nil {
			resp.CrossNUMAVolume = v
		}
	}
	return resp, nil
}

// Topology implements Service.
func (s *LocalService) Topology(ctx context.Context) (*topology.Topology, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.eng.Topology(), nil
}

// Stats implements Service.
func (s *LocalService) Stats(ctx context.Context) (ServiceStats, error) {
	if err := ctx.Err(); err != nil {
		return ServiceStats{}, err
	}
	return ServiceStats{
		TopologyName:      s.eng.Topology().Attrs.Name,
		TopologySignature: s.eng.TopologySignature(),
		Strategies:        Names(),
		Places:            s.places.Load(),
		Cache:             s.eng.Stats(),
	}, nil
}
