package placement

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// ServiceVersion is the current placement request/response schema
// version. Requests carry the version they were built against so a
// newer client talking to an older service (or the reverse, over the
// wire) fails loudly instead of misdecoding fields.
//
// Version history:
//
//	1 — Place/Topology/Stats against a single machine.
//	2 — fleet placement: PlaceRequest.Machine selects a named machine,
//	    PlaceBatch fans a request slice across machines, responses
//	    carry the serving machine and per-slot errors, stats list the
//	    fleet. A v1 request still decodes and routes to the default
//	    machine.
//	3 — adaptive placement: ServiceStats carries the AdaptiveStats
//	    counters of attached reconcilers (epochs, drift alarms,
//	    remaps). Requests and responses are unchanged from v2.
//	4 — high-throughput transport: request matrices may cross the wire
//	    in a sparse run-length encoding or as a fingerprint-only
//	    reference, and ServiceStats carries the serving daemon's
//	    transport counters (NetStats). Request/response semantics are
//	    unchanged from v3 — v4 only compacts how payloads are framed.
//	5 — fleet control plane: ServiceStats carries the daemon's
//	    control-plane counters (FleetStats: observed reports, tracked
//	    peers, pushed remaps, staleness evictions). Place/PlaceBatch
//	    requests and responses are byte-identical to v4 — the new
//	    traffic (leases, observed reports, remap subscriptions) rides
//	    on its own opcodes, not on the placement payloads.
//	6 — partition-delta remap push: a remap pushed to a subscriber
//	    that is exactly one epoch behind may cross as a delta frame
//	    (remapped partitions + moved-task pairs only), with a
//	    measured fallback to the full frame; ServiceStats gains the
//	    delta/full push counters. Placement requests and responses
//	    are byte-identical to v5.
const ServiceVersion = 6

// PlaceRequest asks a placement service for an assignment. It is the
// transport-agnostic unit: the in-process service consumes it
// directly, the orwlnet stub serialises it onto the wire.
type PlaceRequest struct {
	// Version is the schema version the request was built against.
	// Zero means the caller's current ServiceVersion.
	Version int
	// Machine names the fleet machine to place onto (schema v2).
	// Empty selects the service's default machine — which is also how
	// every v1 request arrives, so old clients keep working against a
	// fleet server.
	Machine string
	// Strategy names a registered strategy ("treematch", "compact", ...).
	Strategy string
	// Entities is the number of entities to place. May be zero when
	// Matrix is set, in which case the matrix order is used.
	Entities int
	// Matrix is the communication matrix; nil for matrix-oblivious
	// strategies.
	Matrix *comm.Matrix
	// MatrixFP is an optional precomputed comm.Fingerprint(Matrix) —
	// a performance hint that spares the service re-hashing the matrix
	// on every call (hashing a large matrix dominates the warm cache
	// path). Zero means unknown: the service hashes as needed. If set,
	// it MUST equal comm.Fingerprint(Matrix); a stale value (matrix
	// mutated after hashing) aliases the request to the wrong cache
	// identity and can return the wrong cached assignment. The wire
	// layer fills it in on the serving side of schema v4 requests.
	MatrixFP uint64
	// Options tunes the mapping algorithm.
	Options Options
}

// PlaceResponse carries the assignment plus the diagnostics a remote
// caller cannot observe: whether the mapping cache served the call,
// the modeled quality of the placement, and the service-side latency.
type PlaceResponse struct {
	// Version is the schema version of the response.
	Version int
	// Machine is the fleet machine that served the request (schema
	// v2): the name the request selected, or the default machine's
	// name when the request left it empty.
	Machine string
	// Err carries a batch slot's failure (schema v2): PlaceBatch
	// answers every request positionally, so a failed slot is a
	// response with Err set and no Assignment instead of an error that
	// would void its siblings. Single Place calls return a Go error
	// and leave Err empty.
	Err string
	// Assignment is the computed placement.
	Assignment *Assignment
	// CacheHit is true when the assignment came from the mapping cache.
	CacheHit bool
	// Cost is the TreeMatch objective of the assignment (hop-weighted
	// communication volume); zero when no matrix was given or the
	// assignment is unbound.
	Cost float64
	// CrossNUMAVolume is the volume exchanged across NUMA nodes under
	// the assignment; zero under the same conditions as Cost.
	CrossNUMAVolume float64
	// Cache is a snapshot of the engine's cache counters after the call.
	Cache CacheStats
	// ElapsedNS is the service-side time spent computing, in
	// nanoseconds.
	ElapsedNS int64
}

// ServiceStats describes a placement service: the machine it places
// onto, the strategies it offers, and its traffic counters.
type ServiceStats struct {
	// TopologyName is the served machine's name.
	TopologyName string
	// TopologySignature fingerprints the served machine, so callers
	// can compare machines without fetching the tree.
	TopologySignature uint64
	// Strategies lists the strategy names the service accepts.
	Strategies []string
	// Machines lists the fleet machine names the service routes to
	// (schema v2), default machine first. A single-machine service
	// lists just its own machine.
	Machines []string
	// Places counts the Place calls served (batch slots included).
	Places uint64
	// Cache is a snapshot of the mapping-cache counters.
	Cache CacheStats
	// Adaptive counts the activity of reconcilers attached to the
	// service (schema v3): epochs run, drift alarms, adopted and
	// rejected remaps. Zero when no feedback loop is attached.
	Adaptive AdaptiveStats
	// Net carries the serving daemon's transport counters (schema v4):
	// pipeline depth, wire volume and compact-payload traffic. It is
	// filled by the wire layer when stats are served over a pipelined
	// connection; an in-process service reports zeros (there is no
	// wire).
	Net NetStats
	// Fleet carries the daemon's control-plane counters (schema v5):
	// observed-traffic reports merged, peers currently tracked, remap
	// events pushed to subscribers, stale peers evicted. Filled by the
	// serving daemon when a control plane is attached; an in-process
	// service reports zeros.
	Fleet FleetStats
}

// FleetStats counts a daemon control plane's activity — the
// observability face of the fleet subsystem (schema v5). Counters are
// process-lifetime totals except PeersTracked and Watchers
// (instantaneous).
type FleetStats struct {
	// ReportsReceived counts opObservedReport frames merged into the
	// fleet-wide observed matrices.
	ReportsReceived uint64
	// PeersTracked is the number of live (machine, peer, task-range)
	// leases at the moment of the snapshot.
	PeersTracked uint64
	// RemapsPushed counts remap events delivered to subscribers
	// (one per subscriber per adopted mapping).
	RemapsPushed uint64
	// StalePeersEvicted counts leases dropped because their peer
	// stopped reporting for longer than the staleness window.
	StalePeersEvicted uint64
	// Watchers is the number of live remap subscriptions at the moment
	// of the snapshot.
	Watchers uint64
	// ReportsThrottled counts observed reports refused by the per-peer
	// rate limit (PR 8 hostile-peer hardening). The refusal is
	// retryable: the reporting client backs off and resends under the
	// same sequence number.
	ReportsThrottled uint64
	// LeaseConflicts counts lease registrations refused because the
	// (machine, peer) name was held under a different ownership token.
	LeaseConflicts uint64
	// DeltaPushes counts remap frames shipped to subscribers in the
	// schema v6 delta encoding (moved tasks only); FullPushes counts
	// the frames that carried the whole assignment — catch-up acks,
	// pre-v6 subscribers, epoch gaps, and remaps whose delta body
	// measured larger than the full one. DeltaPushes+FullPushes is the
	// number of remap frames actually written, which can trail
	// RemapsPushed when slow subscribers coalesce events.
	DeltaPushes uint64
	FullPushes  uint64
}

// merge accumulates other into st (fleet aggregation): totals sum,
// instantaneous gauges sum too (each contributor tracks disjoint
// peers/watchers).
func (st *FleetStats) merge(other FleetStats) {
	st.ReportsReceived += other.ReportsReceived
	st.PeersTracked += other.PeersTracked
	st.RemapsPushed += other.RemapsPushed
	st.StalePeersEvicted += other.StalePeersEvicted
	st.Watchers += other.Watchers
	st.ReportsThrottled += other.ReportsThrottled
	st.LeaseConflicts += other.LeaseConflicts
	st.DeltaPushes += other.DeltaPushes
	st.FullPushes += other.FullPushes
}

// NetStats counts a placement daemon's transport-layer traffic — the
// observability face of the pipelined wire protocol (schema v4). All
// counters are process-lifetime totals except InFlight (instantaneous)
// and MatrixCacheEntries (current table size).
type NetStats struct {
	// InFlight is the number of placement frames being served at the
	// moment of the snapshot, across every connection.
	InFlight uint64
	// PeakInFlight is the largest InFlight ever observed — the pipeline
	// depth the daemon has actually been driven to.
	PeakInFlight uint64
	// BytesIn / BytesOut count wire bytes received from and written to
	// placement clients (frame headers included).
	BytesIn  uint64
	BytesOut uint64
	// SparseMatrices counts request matrices that arrived in the sparse
	// run-length encoding rather than the dense row-major one.
	SparseMatrices uint64
	// FingerprintHits / FingerprintMisses count fingerprint-only
	// matrix references resolved from (or missing in) the daemon's
	// seen-matrix table. A miss makes the client resend the body.
	FingerprintHits   uint64
	FingerprintMisses uint64
	// MatrixCacheEntries is the current size of the seen-matrix table.
	MatrixCacheEntries int
}

// Service is the placement-as-a-service surface: everything the
// paper's in-process affinity module needs, shaped so the
// implementation can live in another process or on another node. The
// in-process implementation is LocalService; orwlnet provides the
// remote stub.
type Service interface {
	// Place computes (or fetches from cache) an assignment for the
	// request.
	Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error)
	// PlaceBatch answers a request slice positionally, fanning the
	// slots across the fleet's per-machine engines concurrently. A
	// failing slot reports through its response's Err field; the call
	// error is reserved for whole-batch failures (transport, context).
	PlaceBatch(ctx context.Context, reqs []*PlaceRequest) ([]*PlaceResponse, error)
	// Topology returns the default machine the service places onto.
	// The returned tree is the caller's to keep: mutating it does not
	// reach the service's own topology.
	Topology(ctx context.Context) (*topology.Topology, error)
	// Stats returns the service description and traffic counters.
	Stats(ctx context.Context) (ServiceStats, error)
}

// checkVersion validates a request's schema version and returns the
// effective one.
func checkVersion(v int) (int, error) {
	if v == 0 {
		return ServiceVersion, nil
	}
	if v < 0 || v > ServiceVersion {
		return 0, fmt.Errorf("placement: unsupported request version %d (service speaks <= %d)", v, ServiceVersion)
	}
	return v, nil
}

// LocalService implements Service directly on an Engine — the
// in-process deployment, and the backend cmd/orwlnetd exports over the
// wire.
type LocalService struct {
	eng    *Engine
	places atomic.Uint64

	recMu sync.Mutex
	recs  []*Reconciler

	// diag memoises the quality diagnostics (TreeMatch cost and
	// cross-NUMA volume) per (matrix, binding) pair. Both walk the full
	// matrix, which on a warm cache hit would otherwise dominate the
	// call: the assignment comes back memoised in microseconds and the
	// diagnostics recompute it from scratch every time.
	diagMu sync.Mutex
	diag   map[diagKey]diagVal
}

// diagKey identifies a diagnostics result: the diagnostics depend only
// on the matrix contents and the compute binding, whatever strategy or
// options produced the binding.
type diagKey struct {
	matrix uint64 // comm.Fingerprint of the request matrix
	pus    uint64 // puFingerprint of the assignment's ComputePU
}

type diagVal struct {
	cost, crossNUMA float64
}

// diagCacheEntries bounds the diagnostics memo. Overflow clears the
// map outright: recomputing a handful of diagnostics after a workload
// shift is cheaper than maintaining LRU order on the hot path.
const diagCacheEntries = 256

// puFingerprint hashes a compute binding the same word-wise FNV-1a way
// comm.Fingerprint hashes a matrix.
func puFingerprint(pus []int) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(len(pus))) * fnvPrime64
	for _, pu := range pus {
		h = (h ^ uint64(uint(pu))) * fnvPrime64
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// diagnostics returns the memoised (cost, cross-NUMA volume) for the
// assignment over the matrix, computing and caching on miss. fp is the
// matrix fingerprint the caller already holds.
func (s *LocalService) diagnostics(fp uint64, m *comm.Matrix, a *Assignment) (float64, float64) {
	key := diagKey{matrix: fp, pus: puFingerprint(a.ComputePU)}
	s.diagMu.Lock()
	if v, ok := s.diag[key]; ok {
		s.diagMu.Unlock()
		return v.cost, v.crossNUMA
	}
	s.diagMu.Unlock()

	// Compute outside the lock: concurrent misses may duplicate work
	// once, but never serialise distinct placements.
	var v diagVal
	if c, err := treematch.Cost(s.eng.top, m, a.ComputePU); err == nil {
		v.cost = c
	}
	if x, err := treematch.CrossNUMAVolume(s.eng.top, m, a.ComputePU); err == nil {
		v.crossNUMA = x
	}

	s.diagMu.Lock()
	if s.diag == nil || len(s.diag) >= diagCacheEntries {
		s.diag = make(map[diagKey]diagVal, 16)
	}
	s.diag[key] = v
	s.diagMu.Unlock()
	return v.cost, v.crossNUMA
}

// NewLocalService wraps an engine as a Service.
func NewLocalService(e *Engine) (*LocalService, error) {
	if e == nil {
		return nil, fmt.Errorf("placement: nil engine")
	}
	return &LocalService{eng: e}, nil
}

// Engine exposes the wrapped engine (for binding and direct pipeline
// access in the owning process).
func (s *LocalService) Engine() *Engine { return s.eng }

// Place implements Service.
func (s *LocalService) Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("placement: nil request")
	}
	if _, err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	name := s.eng.Topology().Attrs.Name
	if req.Machine != "" && !strings.EqualFold(req.Machine, name) {
		return nil, fmt.Errorf("placement: unknown machine %q (service places onto %q)", req.Machine, name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	// Hash the matrix once (or take the caller's precomputed identity)
	// and reuse it for both the mapping-cache key and the diagnostics
	// memo — on a warm hit the hash IS the dominant cost.
	fp := req.MatrixFP
	if fp == 0 && req.Matrix != nil {
		fp = comm.Fingerprint(req.Matrix)
	}
	a, hit, err := s.eng.ComputeHinted(req.Strategy, req.Matrix, fp, req.Entities, req.Options)
	if err != nil {
		return nil, err
	}
	s.places.Add(1)
	resp := &PlaceResponse{
		Version:    ServiceVersion,
		Machine:    name,
		Assignment: a,
		CacheHit:   hit,
		Cache:      s.eng.Stats(),
		ElapsedNS:  time.Since(start).Nanoseconds(),
	}
	if req.Matrix != nil && !a.Unbound {
		// Quality diagnostics need both a matrix and an actual binding;
		// failures here are diagnostic-only and never fail the call.
		resp.Cost, resp.CrossNUMAVolume = s.diagnostics(fp, req.Matrix, a)
	}
	return resp, nil
}

// PlaceFrom is Place with the request's matrix drawn from a source at
// call time — the service-level face of the MatrixSource seam. The
// caller's request is not mutated; its Matrix field, if set, is
// overridden by the source.
func (s *LocalService) PlaceFrom(ctx context.Context, src MatrixSource, req *PlaceRequest) (*PlaceResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("placement: nil request")
	}
	m, err := s.eng.Extract(src)
	if err != nil {
		return nil, err
	}
	sourced := *req
	sourced.Matrix = m
	return s.Place(ctx, &sourced)
}

// PlaceBatch implements Service: the slots fan out concurrently onto
// the engine, whose singleflight collapses identical slots into one
// compute.
func (s *LocalService) PlaceBatch(ctx context.Context, reqs []*PlaceRequest) ([]*PlaceResponse, error) {
	return fanOutBatch(ctx, s.Place, reqs)
}

// Topology implements Service. The engine's tree is returned as a deep
// copy (the same serialisation round trip a remote caller gets): an
// in-process caller mutating the result cannot desynchronise the
// engine's cached topology signature from its tree, which would
// corrupt cache keying.
func (s *LocalService) Topology(ctx context.Context) (*topology.Topology, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.eng.Topology().Clone()
}

// AttachReconciler registers a feedback loop with the service, so its
// epoch/drift/remap counters surface through Stats (and, remotely,
// through the schema-v3 stats payload).
func (s *LocalService) AttachReconciler(r *Reconciler) {
	if r == nil {
		return
	}
	s.recMu.Lock()
	s.recs = append(s.recs, r)
	s.recMu.Unlock()
}

// adaptiveStats merges the counters of every attached reconciler.
func (s *LocalService) adaptiveStats() AdaptiveStats {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	var st AdaptiveStats
	for _, r := range s.recs {
		st.merge(r.Stats())
	}
	return st
}

// Stats implements Service.
func (s *LocalService) Stats(ctx context.Context) (ServiceStats, error) {
	if err := ctx.Err(); err != nil {
		return ServiceStats{}, err
	}
	return ServiceStats{
		TopologyName:      s.eng.Topology().Attrs.Name,
		TopologySignature: s.eng.TopologySignature(),
		Strategies:        Names(),
		Machines:          []string{s.eng.Topology().Attrs.Name},
		Places:            s.places.Load(),
		Cache:             s.eng.Stats(),
		Adaptive:          s.adaptiveStats(),
	}, nil
}

// batchParallelism bounds the goroutines one PlaceBatch fans out. A
// remote batch frame can decode to tens of thousands of slots (the
// wire only bounds the count by payload size), and each slot may run
// a full TreeMatch — an unbounded fan-out would let one RPC blow up
// the daemon's memory and scheduler. Slots beyond the bound queue on
// the semaphore; cross-machine comparisons (a handful of slots) are
// unaffected.
var batchParallelism = max(4, 2*runtime.GOMAXPROCS(0))

// fanOutBatch answers every request concurrently through place,
// positionally, at most batchParallelism slots in flight. Slot
// failures become responses with Err set, so one bad request cannot
// void its siblings; the call itself only fails on whole-batch
// conditions (context cancellation).
func fanOutBatch(ctx context.Context, place func(context.Context, *PlaceRequest) (*PlaceResponse, error), reqs []*PlaceRequest) ([]*PlaceResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]*PlaceResponse, len(reqs))
	sem := make(chan struct{}, batchParallelism)
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req *PlaceRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := place(ctx, req)
			if err != nil {
				resp = &PlaceResponse{Version: ServiceVersion, Err: err.Error()}
				if req != nil {
					resp.Machine = req.Machine
				}
			}
			out[i] = resp
		}(i, req)
	}
	wg.Wait()
	// Cancellation mid-batch is a whole-batch condition, per the
	// Service contract: without this, every in-flight slot would
	// report "context canceled" in its Err field and the batch itself
	// would look successful, indistinguishable from genuine
	// per-machine failures.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
