package placement

import (
	"orwlplace/internal/perfsim"
)

// SimPlacement converts an assignment into the performance
// simulator's placement: bound strategies get a static binding with
// local first-touch allocation, the unbound baseline the machine's
// native scheduling policy (seeded for reproducibility). This is the
// bridge every evaluation front end crosses, so figures, tables and
// the simulate tool all cost a strategy the same way.
func (e *Engine) SimPlacement(a *Assignment, seed int64) *perfsim.Placement {
	if a == nil || a.Unbound {
		return &perfsim.Placement{
			Dynamic: &perfsim.DynamicPolicy{Policy: perfsim.PolicyFor(e.top), Seed: seed},
		}
	}
	return &perfsim.Placement{
		ComputePU:  a.ComputePU,
		ControlPU:  a.ControlPU,
		LocalAlloc: true,
	}
}

// Simulate costs the named strategy on a workload: compute (or fetch
// from cache) the assignment, then run the performance model under
// it.
func (e *Engine) Simulate(strategy string, w *perfsim.Workload, opt Options, seed int64) (*perfsim.Result, *Assignment, error) {
	a, err := e.Compute(strategy, w.Comm, len(w.Threads), opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := perfsim.Simulate(e.top, w, e.SimPlacement(a, seed))
	if err != nil {
		return nil, nil, err
	}
	return res, a, nil
}
