package placement

import (
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// The cache pays off when a dynamic program re-presents a matrix the
// engine has mapped before: a cached Compute is a fingerprint plus a
// map lookup, against a full TreeMatch run cold. Compare:
//
//	go test ./internal/placement -bench 'TreeMatch(Cold|Cached)' -benchmem

func benchMatrix() *comm.Matrix {
	return comm.Stencil2D(8, 8, 1<<14, 1<<14)
}

func BenchmarkTreeMatchCold(b *testing.B) {
	top := topology.SMP12E5()
	m := benchMatrix()
	eng, err := NewEngine(top, WithCacheEntries(0)) // every run computes
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeMatchCached(b *testing.B) {
	top := topology.SMP12E5()
	m := benchMatrix()
	eng, err := NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
			b.Fatal(err)
		}
	}
}
