package placement

import (
	"sync"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// The cache pays off when a dynamic program re-presents a matrix the
// engine has mapped before: a cached Compute is a fingerprint plus a
// map lookup, against a full TreeMatch run cold. Compare:
//
//	go test ./internal/placement -bench 'TreeMatch(Cold|Cached)' -benchmem

func benchMatrix() *comm.Matrix {
	return comm.Stencil2D(8, 8, 1<<14, 1<<14)
}

func BenchmarkTreeMatchCold(b *testing.B) {
	top := topology.SMP12E5()
	m := benchMatrix()
	eng, err := NewEngine(top, WithCacheEntries(0)) // every run computes
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeMatchCached(b *testing.B) {
	top := topology.SMP12E5()
	m := benchMatrix()
	eng, err := NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// A burst of concurrent Compute calls per distinct key: with
// singleflight the strategy runs once per key per burst regardless of
// the burst width, so per-call cost approaches a cache hit.
func BenchmarkTreeMatchConcurrentBurst(b *testing.B) {
	top := topology.SMP12E5()
	m := benchMatrix()
	eng, err := NewEngine(top)
	if err != nil {
		b.Fatal(err)
	}
	const width = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < width; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := eng.Compute(TreeMatch, m, 0, Options{ControlThreads: true}); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
