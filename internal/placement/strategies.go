package placement

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// Built-in strategies: the paper's affinity algorithm, the four
// topology-oblivious environment policies it is compared against, and
// the unbound baseline. All are first-class registry peers.
func init() {
	MustRegister(&treeMatchStrategy{})
	MustRegister(obliviousStrategy{treematch.StrategyCompact})
	MustRegister(obliviousStrategy{treematch.StrategyCompactCores})
	MustRegister(obliviousStrategy{treematch.StrategyScatter})
	MustRegister(obliviousStrategy{treematch.StrategyRoundRobinPU})
	MustRegister(&noneStrategy{})
}

// TreeMatch is the name of the paper's topology-and-communication
// aware strategy (Algorithm 1).
const TreeMatch = "treematch"

// None is the name of the unbound baseline: no binding at all, the OS
// scheduler decides.
const None = "none"

// treeMatchStrategy adapts treematch.Map: the paper's Algorithm 1
// with control-thread accounting and oversubscription handling.
type treeMatchStrategy struct{}

func (treeMatchStrategy) Name() string    { return TreeMatch }
func (treeMatchStrategy) CommAware() bool { return true }

func (s treeMatchStrategy) Map(top *topology.Topology, m *comm.Matrix, n int, opt Options) (*Assignment, error) {
	if err := validateRequest(s, top, m, n); err != nil {
		return nil, err
	}
	mp, err := treematch.Map(top, m, opt)
	if err != nil {
		return nil, err
	}
	return fromMapping(TreeMatch, mp), nil
}

// MapAffinity implements AffinityMapper: Algorithm 1 on the
// representation-independent surface, partitioned above the threshold.
func (s treeMatchStrategy) MapAffinity(top *topology.Topology, a comm.Affinity, n int, opt Options) (*Assignment, error) {
	if top == nil {
		return nil, fmt.Errorf("placement: %s: nil topology", s.Name())
	}
	if a == nil {
		return nil, fmt.Errorf("placement: %s: nil affinity", s.Name())
	}
	if n <= 0 {
		return nil, fmt.Errorf("placement: %s: need at least one entity, got %d", s.Name(), n)
	}
	mp, err := treematch.MapAffinity(top, a, opt)
	if err != nil {
		return nil, err
	}
	return fromMapping(TreeMatch, mp), nil
}

// obliviousStrategy adapts treematch.Place: the environment-variable
// policies (KMP_AFFINITY=compact/scatter, OMP_PROC_BIND=close/spread
// equivalents) that place by machine shape only.
type obliviousStrategy struct {
	s treematch.Strategy
}

func (o obliviousStrategy) Name() string         { return o.s.String() }
func (o obliviousStrategy) CommAware() bool      { return false }
func (o obliviousStrategy) IgnoresOptions() bool { return true }

func (o obliviousStrategy) Map(top *topology.Topology, _ *comm.Matrix, n int, _ Options) (*Assignment, error) {
	if err := validateRequest(o, top, nil, n); err != nil {
		return nil, err
	}
	pus, err := treematch.Place(top, n, o.s)
	if err != nil {
		return nil, err
	}
	return &Assignment{Strategy: o.Name(), ComputePU: pus}, nil
}

// noneStrategy is the unbound baseline of every figure: threads run
// wherever the OS scheduler puts them.
type noneStrategy struct{}

func (noneStrategy) Name() string         { return None }
func (noneStrategy) CommAware() bool      { return false }
func (noneStrategy) Unbound() bool        { return true }
func (noneStrategy) IgnoresOptions() bool { return true }

func (s noneStrategy) Map(top *topology.Topology, _ *comm.Matrix, n int, _ Options) (*Assignment, error) {
	if err := validateRequest(s, top, nil, n); err != nil {
		return nil, err
	}
	return &Assignment{Strategy: None, Unbound: true}, nil
}
