// Package placement unifies the paper's three-step placement pipeline
// — dependency extraction, topology-aware mapping, binding commit —
// behind one engine with pluggable strategies and a mapping cache.
//
// The paper's contribution (the TreeMatch-based affinity module) and
// the topology-oblivious baselines it is evaluated against
// (KMP_AFFINITY=compact/scatter-style policies, plus the unbound OS
// scheduler) are registered as peers implementing the same Strategy
// interface. Consumers — the core affinity module, the experiments
// harness, the simulator front ends — iterate the registry or name a
// strategy instead of wiring algorithm calls by hand.
//
// The Engine memoises computed assignments keyed by (topology
// signature, matrix fingerprint, strategy, options), so dynamic
// programs that oscillate between a small set of communication
// patterns pay the mapping cost once per distinct pattern.
package placement

import (
	"fmt"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// Options tunes the mapping algorithms. Oblivious strategies ignore
// it; the treematch strategy forwards it to Algorithm 1.
type Options = treematch.Options

// Assignment is the outcome of one strategy run: where every compute
// entity (and, when the strategy manages them, its control threads)
// goes. The zero slices of the unbound baseline mean "leave placement
// to the OS scheduler".
type Assignment struct {
	// Strategy is the name of the strategy that produced the assignment.
	Strategy string
	// Unbound is true for the none baseline: no binding is applied and
	// the OS scheduler places (and migrates) the threads.
	Unbound bool
	// ComputePU[i] is the logical PU index entity i is bound to.
	ComputePU []int
	// ControlPU[i] is the PU for entity i's control threads, or -1 when
	// they are left to the OS. Nil when the strategy does not manage
	// control threads.
	ControlPU []int
	// Mode records how control threads were accounted for.
	Mode treematch.ControlMode
	// Oversubscribed is true when there were more entities than cores.
	Oversubscribed bool
	// CoreOf[i] is the logical core index entity i runs on (diagnostic;
	// nil for strategies that do not track it).
	CoreOf []int
	// Partitions records the partition structure when the mapping came
	// from the partitioned sparse path (treematch.MapAffinity above the
	// threshold); nil otherwise. The adaptive reconciler keys its
	// per-subtree drift tracking on it.
	Partitions *treematch.Partitioning
}

// Entities returns the number of placed entities.
func (a *Assignment) Entities() int { return len(a.ComputePU) }

// Clone returns a deep copy, so cached assignments stay immutable when
// callers edit the returned slices.
func (a *Assignment) Clone() *Assignment {
	if a == nil {
		return nil
	}
	c := *a
	c.ComputePU = append([]int(nil), a.ComputePU...)
	c.ControlPU = append([]int(nil), a.ControlPU...)
	c.CoreOf = append([]int(nil), a.CoreOf...)
	c.Partitions = a.Partitions.Clone()
	return &c
}

// Mapping converts the assignment into the treematch result type, the
// compatibility surface of the paper-named core API (RenderMapping,
// Mapping().Mode, ...). Returns nil for unbound assignments.
func (a *Assignment) Mapping(top *topology.Topology) *treematch.Mapping {
	if a == nil || a.Unbound {
		return nil
	}
	m := a.Clone()
	return &treematch.Mapping{
		Top:            top,
		ComputePU:      m.ComputePU,
		ControlPU:      m.ControlPU,
		Mode:           m.Mode,
		Oversubscribed: m.Oversubscribed,
		CoreOf:         m.CoreOf,
		Partitions:     m.Partitions,
	}
}

// fromMapping wraps a treematch result as an assignment.
func fromMapping(strategy string, mp *treematch.Mapping) *Assignment {
	return &Assignment{
		Strategy:       strategy,
		ComputePU:      mp.ComputePU,
		ControlPU:      mp.ControlPU,
		Mode:           mp.Mode,
		Oversubscribed: mp.Oversubscribed,
		CoreOf:         mp.CoreOf,
		Partitions:     mp.Partitions,
	}
}

// Strategy is one placement policy: given a machine, a communication
// matrix (nil for matrix-oblivious policies) and an entity count, it
// assigns entities to PUs.
type Strategy interface {
	// Name is the registry key, e.g. "treematch" or "scatter".
	Name() string
	// CommAware reports whether the result depends on the communication
	// matrix; the engine's cache keys on the matrix only then.
	CommAware() bool
	// Map computes the assignment of n entities on top. m may be nil
	// unless CommAware.
	Map(top *topology.Topology, m *comm.Matrix, n int, opt Options) (*Assignment, error)
}

// AffinityMapper is the optional interface a comm-aware strategy
// implements to map directly from the representation-independent
// affinity surface. The engine's affinity compute path dispatches here
// when available, so a sparse 10k-task matrix never materializes its
// n² dense form; strategies without it fall back to Map over
// a.Dense().
type AffinityMapper interface {
	MapAffinity(top *topology.Topology, a comm.Affinity, n int, opt Options) (*Assignment, error)
}

func validateRequest(s Strategy, top *topology.Topology, m *comm.Matrix, n int) error {
	if top == nil {
		return fmt.Errorf("placement: %s: nil topology", s.Name())
	}
	if s.CommAware() && m == nil {
		return fmt.Errorf("placement: %s: nil communication matrix", s.Name())
	}
	if n <= 0 {
		return fmt.Errorf("placement: %s: need at least one entity, got %d", s.Name(), n)
	}
	return nil
}
