package placement

import (
	"context"
	"strings"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

// wiredProgram returns a scheduled 4-task pipeline program.
func wiredProgram(t *testing.T) *orwl.Program {
	t.Helper()
	prog := orwl.MustProgram(4, "data")
	err := prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("data", 512); err != nil {
			return err
		}
		w := orwl.NewHandle()
		if err := ctx.WriteInsert(w, orwl.Loc(ctx.TID(), "data"), 0); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "data"), 1); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	top, err := topology.ByName("tinyht")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(top)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestExtractMatrixNilProgram(t *testing.T) {
	eng := testEngine(t)
	if _, err := eng.ExtractMatrix(nil); err == nil || !strings.Contains(err.Error(), "nil program") {
		t.Errorf("ExtractMatrix(nil) error = %v, want nil-program error", err)
	}
	if _, err := eng.Extract(nil); err == nil {
		t.Error("Extract(nil) accepted")
	}
}

func TestExtractMatrixUnscheduledProgram(t *testing.T) {
	eng := testEngine(t)
	prog := orwl.MustProgram(4, "data") // no handles, never scheduled
	_, err := eng.ExtractMatrix(prog)
	if err == nil || !strings.Contains(err.Error(), "no handle insertions") {
		t.Errorf("ExtractMatrix(unscheduled) error = %v, want descriptive error", err)
	}
}

func TestPlaceProgramNilAndUnscheduled(t *testing.T) {
	eng := testEngine(t)
	if _, err := eng.PlaceProgram(nil, TreeMatch, Options{}); err == nil {
		t.Error("PlaceProgram(nil) accepted")
	}
	if _, err := eng.PlaceProgram(orwl.MustProgram(2, "x"), TreeMatch, Options{}); err == nil {
		t.Error("PlaceProgram(unscheduled, no handles) accepted")
	}
}

func TestDeclaredSourceMatchesDependencyMatrix(t *testing.T) {
	prog := wiredProgram(t)
	eng := testEngine(t)
	m, err := eng.Extract(Declared(prog))
	if err != nil {
		t.Fatal(err)
	}
	want := prog.DependencyMatrix()
	for i := 0; i < want.Order(); i++ {
		for j := 0; j < want.Order(); j++ {
			if m.At(i, j) != want.At(i, j) {
				t.Fatalf("declared(%d,%d) = %g, want %g", i, j, m.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestObservedSourceWindows(t *testing.T) {
	prog := wiredProgram(t)
	src := ObservedWindow(prog)
	if src.Name() != "observed-window" {
		t.Errorf("name = %q", src.Name())
	}
	// The wired program ran no critical sections, so windows are empty
	// but well-formed.
	m, err := src.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 4 || m.Total() != 0 {
		t.Errorf("window = order %d total %g, want order 4 total 0", m.Order(), m.Total())
	}
	if _, err := Observed(nil).Matrix(); err == nil {
		t.Error("Observed(nil) accepted")
	}
}

func TestPlaceSourceRejectsNarrowSource(t *testing.T) {
	prog := wiredProgram(t)
	eng := testEngine(t)
	narrow := Fixed("narrow", comm.NewMatrix(2))
	if _, err := eng.PlaceSource(prog, narrow, TreeMatch, Options{}); err == nil {
		t.Error("PlaceSource with a 2-entity source for a 4-task program accepted")
	}
}

func TestLocalServicePlaceFrom(t *testing.T) {
	prog := wiredProgram(t)
	eng := testEngine(t)
	svc, err := NewLocalService(eng)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.PlaceFrom(context.Background(), Declared(prog), &PlaceRequest{Strategy: TreeMatch})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Assignment == nil || len(resp.Assignment.ComputePU) != 4 {
		t.Fatalf("PlaceFrom assignment = %+v", resp.Assignment)
	}
	if resp.Cost == 0 {
		t.Error("PlaceFrom cost = 0: the source's matrix did not reach the diagnostics")
	}
	// The source seam must fail loudly, not place an empty matrix.
	if _, err := svc.PlaceFrom(context.Background(), Declared(nil), &PlaceRequest{Strategy: TreeMatch}); err == nil {
		t.Error("PlaceFrom with nil-program source accepted")
	}
}

func TestFixedSource(t *testing.T) {
	m := comm.NewMatrix(3)
	m.Set(0, 1, 7)
	src := Fixed("trace", m)
	got, err := src.Matrix()
	if err != nil || got.At(0, 1) != 7 {
		t.Errorf("Fixed.Matrix() = %v, %v", got, err)
	}
	if src.Name() != "trace" {
		t.Errorf("name = %q", src.Name())
	}
	if _, err := Fixed("", nil).Matrix(); err == nil {
		t.Error("Fixed(nil) accepted")
	}
}

// TestObservedWindowSourcesIndependent guards the per-source window
// baseline: two windowed sources over one program must each see every
// epoch, not steal epochs from each other.
func TestObservedWindowSourcesIndependent(t *testing.T) {
	prog := orwl.MustProgram(2, "data")
	loc := prog.Location(orwl.Loc(0, "data"))
	loc.Scale(100)
	transfer := func() {
		w := loc.NewRequestFor(0, orwl.Write)
		w.Await()
		if err := w.Release(); err != nil {
			t.Fatal(err)
		}
		r := loc.NewRequestFor(1, orwl.Read)
		r.Await()
		if err := r.Release(); err != nil {
			t.Fatal(err)
		}
	}

	a, b := ObservedWindow(prog), ObservedWindow(prog)
	transfer()
	ma, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if ma.Total() != 100 {
		t.Fatalf("source a window total %g, want 100", ma.Total())
	}
	// Source b must still see the same epoch even though a consumed it.
	mb, err := b.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if mb.Total() != 100 {
		t.Fatalf("source b window total %g, want 100 (epoch stolen by source a)", mb.Total())
	}
	// And the program's default window is a third independent consumer.
	if got := prog.ObservedWindow().Total(); got != 100 {
		t.Fatalf("program default window total %g, want 100", got)
	}
	transfer()
	if got, _ := a.Matrix(); got.Total() != 100 {
		t.Fatalf("source a second epoch total %g, want 100", got.Total())
	}
}
