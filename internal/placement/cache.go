package placement

import (
	"container/list"
	"hash/fnv"
	"math"

	"orwlplace/internal/comm"
	"orwlplace/internal/topology"
)

// cacheKey identifies one memoised mapping: the machine, the matrix
// (for comm-aware strategies), the entity count and the strategy with
// its options. Two programs presenting the same communication pattern
// on the same machine share the entry.
type cacheKey struct {
	topo     uint64
	matrix   uint64
	entities int
	strategy string
	options  uint64
	// affinity marks keys of the affinity compute path, whose matrix
	// field holds comm.FingerprintOf instead of comm.Fingerprint — two
	// different hash functions over the same domain must not share a
	// key space.
	affinity bool
}

// Signature fingerprints a topology by its canonical JSON encoding
// plus its name, so structurally identical machines (every call of
// topology.SMP12E5 builds a fresh tree) hash alike and a restricted
// machine hashes apart from its parent.
//
// A topology whose encoding fails (e.g. a NaN attribute) must not
// degrade to a name-only hash: two differently-broken machines with
// the same name would alias in the mapping cache and serve each
// other's assignments. The error is mixed into the hash behind a
// separator no healthy JSON encoding starts with — and because
// encoding/json's error text names the value, not where it sits, the
// tree structure is hashed too, so same-error machines with different
// shapes still fingerprint apart.
func Signature(top *topology.Topology) uint64 {
	h := fnv.New64a()
	h.Write([]byte(top.Attrs.Name))
	data, err := top.MarshalJSON()
	if err != nil {
		h.Write([]byte("\x00marshal-error\x00"))
		h.Write([]byte(err.Error()))
		var buf [8]byte
		put := func(v uint64) {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		var walk func(o *topology.Object)
		walk = func(o *topology.Object) {
			put(uint64(o.Type))
			put(uint64(int64(o.OSIndex)))
			put(uint64(int64(o.CacheSize)))
			put(uint64(int64(o.Memory)))
			put(uint64(len(o.Children)))
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(top.Root)
		return h.Sum64()
	}
	h.Write(data)
	return h.Sum64()
}

// matrixFingerprint hashes the order and every entry of the matrix.
// The hash is comm.Fingerprint — the same identity the wire protocol's
// fingerprint-only requests resolve matrices by, so a matrix cached
// here and one resolved from the daemon's seen-matrix table key alike.
func matrixFingerprint(m *comm.Matrix) uint64 {
	return comm.Fingerprint(m)
}

// optionsFingerprint hashes the mapping options that change the
// result, canonicalised so default-equivalent configurations share a
// cache entry.
func optionsFingerprint(opt Options) uint64 {
	opt = opt.Canonical()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	flags := uint64(0)
	if opt.ControlThreads {
		flags = 1
	}
	put(flags)
	put(math.Float64bits(opt.ControlVolumeFraction))
	put(uint64(opt.ExhaustiveLimit))
	put(uint64(opt.RefineRounds))
	put(uint64(int64(opt.PartitionThreshold)))
	return h.Sum64()
}

// mappingCache is a small LRU of computed assignments. A max of zero
// (or less) disables caching entirely.
type mappingCache struct {
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	a   *Assignment
}

func newMappingCache(max int) *mappingCache {
	return &mappingCache{max: max, order: list.New(), entries: make(map[cacheKey]*list.Element)}
}

func (c *mappingCache) get(k cacheKey) (*Assignment, bool) {
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).a, true
}

func (c *mappingCache) put(k cacheKey, a *Assignment) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).a = a
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, a: a})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *mappingCache) len() int { return c.order.Len() }
