package placement

import (
	"fmt"
	"sync"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwl"
)

// MatrixSource is the seam for step 1 of the pipeline: where the
// communication matrix comes from. The paper extracts it once, from
// the declared handle graph at the schedule barrier (DeclaredSource);
// a feedback loop instead samples what the runtime actually measured
// (ObservedSource). Everything downstream — Compute, the mapping
// cache, the service surface, the adaptive reconciler — consumes
// sources and stays oblivious to which kind feeds it.
type MatrixSource interface {
	// Name labels the source for diagnostics ("declared", "observed",
	// "observed-window", ...).
	Name() string
	// Matrix produces the current communication matrix. Sources over
	// live programs re-derive it per call; windowed sources advance
	// their window, so each call yields the next epoch.
	Matrix() (*comm.Matrix, error)
}

// AffinitySource is MatrixSource lifted onto the representation-
// independent surface: sources whose natural representation is sparse
// (fleet matrices, observed counters above the dense threshold) serve
// it without ever materializing n². Dense sources adapt via
// AffinityOf.
type AffinitySource interface {
	// Name labels the source for diagnostics.
	Name() string
	// Affinity produces the current communication affinity. Windowed
	// sources advance their window per call, like MatrixSource.Matrix.
	Affinity() (comm.Affinity, error)
}

// matrixAffinitySource adapts a MatrixSource as an AffinitySource: the
// dense matrix is served as its own affinity.
type matrixAffinitySource struct{ src MatrixSource }

// AffinityOf adapts a MatrixSource as an AffinitySource. Sources that
// already implement AffinitySource are returned as-is.
func AffinityOf(src MatrixSource) AffinitySource {
	if a, ok := src.(AffinitySource); ok {
		return a
	}
	return &matrixAffinitySource{src: src}
}

// Name implements AffinitySource.
func (s *matrixAffinitySource) Name() string { return s.src.Name() }

// Affinity implements AffinitySource.
func (s *matrixAffinitySource) Affinity() (comm.Affinity, error) {
	m, err := s.src.Matrix()
	if err != nil || m == nil {
		return nil, err
	}
	return m, nil
}

// FixedAffinitySource serves a constant affinity — sparse traces and
// large-scale tests, the affinity-surface sibling of FixedSource.
type FixedAffinitySource struct {
	Label string
	A     comm.Affinity
}

// FixedAffinity wraps a constant affinity as a source.
func FixedAffinity(label string, a comm.Affinity) *FixedAffinitySource {
	return &FixedAffinitySource{Label: label, A: a}
}

// Name implements AffinitySource.
func (s *FixedAffinitySource) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "fixed-affinity"
}

// Affinity implements AffinitySource.
func (s *FixedAffinitySource) Affinity() (comm.Affinity, error) {
	if s == nil || s.A == nil {
		return nil, fmt.Errorf("placement: fixed affinity source: nil affinity")
	}
	return s.A, nil
}

// DeclaredSource derives the matrix from a program's declared handle
// graph — today's prog.DependencyMatrix(), behind the seam.
type DeclaredSource struct {
	Prog *orwl.Program
}

// Declared wraps a program's declared dependency graph as a source.
func Declared(prog *orwl.Program) *DeclaredSource {
	return &DeclaredSource{Prog: prog}
}

// Name implements MatrixSource.
func (s *DeclaredSource) Name() string { return "declared" }

// Matrix implements MatrixSource. It rejects a nil program and a
// program that has recorded no handle insertions yet — before the
// first WriteInsert/ReadInsert there is no dependency information to
// extract, and placing on an all-zero matrix silently degenerates to
// an arbitrary mapping.
func (s *DeclaredSource) Matrix() (*comm.Matrix, error) {
	if s == nil || s.Prog == nil {
		return nil, fmt.Errorf("placement: declared source: nil program")
	}
	if s.Prog.InsertCount() == 0 && !s.Prog.Scheduled() {
		return nil, fmt.Errorf("placement: declared source: program has no handle insertions yet (call WriteInsert/ReadInsert before extracting, or schedule first)")
	}
	return s.Prog.DependencyMatrix(), nil
}

// ObservedSource samples the matrix the runtime instrumentation
// measured: what the tasks actually exchanged, not what their handle
// graph declared. With Windowed set, every Matrix call returns the
// traffic since this source's previous call (disjoint epochs — the
// adaptive reconciler's diet); otherwise it returns the cumulative
// matrix. Each windowed source owns its baseline, so several
// consumers (a reconciler, a module, a scraper) sample the same
// program without stealing each other's epochs.
type ObservedSource struct {
	Prog     *orwl.Program
	Windowed bool

	winOnce sync.Once
	win     *orwl.TrafficWindow // lazily created per source
}

// Observed wraps a program's cumulative observed traffic as a source.
func Observed(prog *orwl.Program) *ObservedSource {
	return &ObservedSource{Prog: prog}
}

// ObservedWindow wraps a program's observed traffic as a windowed
// source: each Matrix call starts a new epoch.
func ObservedWindow(prog *orwl.Program) *ObservedSource {
	return &ObservedSource{Prog: prog, Windowed: true}
}

// Name implements MatrixSource.
func (s *ObservedSource) Name() string {
	if s.Windowed {
		return "observed-window"
	}
	return "observed"
}

// Matrix implements MatrixSource.
func (s *ObservedSource) Matrix() (*comm.Matrix, error) {
	if s == nil || s.Prog == nil {
		return nil, fmt.Errorf("placement: observed source: nil program")
	}
	if s.Windowed {
		s.winOnce.Do(func() { s.win = s.Prog.Traffic().NewWindow() })
		return s.win.Next(), nil
	}
	return s.Prog.ObservedMatrix(), nil
}

// Affinity implements AffinitySource: the same counters and the same
// window as Matrix (a windowed source advances one shared window
// whichever surface is called), served sparse above the dense
// threshold. AffinityOf therefore returns observed sources as-is.
func (s *ObservedSource) Affinity() (comm.Affinity, error) {
	if s == nil || s.Prog == nil {
		return nil, fmt.Errorf("placement: observed source: nil program")
	}
	if s.Windowed {
		s.winOnce.Do(func() { s.win = s.Prog.Traffic().NewWindow() })
		return s.win.NextAffinity(), nil
	}
	return s.Prog.ObservedAffinity(), nil
}

// FixedSource serves a constant matrix — replayed traces, tests, and
// the simulate tool's phase scripts.
type FixedSource struct {
	Label string
	M     *comm.Matrix
}

// Fixed wraps a constant matrix as a source.
func Fixed(label string, m *comm.Matrix) *FixedSource {
	return &FixedSource{Label: label, M: m}
}

// Name implements MatrixSource.
func (s *FixedSource) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "fixed"
}

// Matrix implements MatrixSource.
func (s *FixedSource) Matrix() (*comm.Matrix, error) {
	if s == nil || s.M == nil {
		return nil, fmt.Errorf("placement: fixed source: nil matrix")
	}
	return s.M, nil
}
