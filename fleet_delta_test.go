package orwlplace

// In-package tests for the facade's O(changed) remap application: a
// delta-aware event re-binds only the moved tasks inside the lease,
// and anything the loop cannot build on (first remap, epoch gap)
// falls back to the full re-bind.

import (
	"testing"

	"orwlplace/internal/orwl"
)

func TestFleetAdaptiveSparseRebind(t *testing.T) {
	const n = 8
	prog := orwl.MustProgram(n)
	fa := &FleetAdaptive{prog: prog, count: n}

	full := &Assignment{Strategy: "treematch", ComputePU: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	if applied, err := fa.ApplyRemap(Remap{Machine: "m", Epoch: 1, Assignment: full}); err != nil || !applied {
		t.Fatalf("first remap = (%v, %v), want applied", applied, err)
	}
	if b := prog.Binding(); len(b) != n {
		t.Fatalf("first remap bound %d tasks, want the full %d", len(b), n)
	}

	// Epoch 2 names its moved tasks: only those re-bind.
	next := full.Clone()
	next.ComputePU[2] = 9
	next.ComputePU[5] = 10
	if applied, err := fa.ApplyRemap(Remap{Machine: "m", Epoch: 2, Assignment: next, MovedTasks: []int{2, 5}, Delta: true}); err != nil || !applied {
		t.Fatalf("delta remap = (%v, %v), want applied", applied, err)
	}
	b := prog.Binding()
	if b[2] != 9 || b[5] != 10 || b[0] != 0 || b[7] != 7 {
		t.Fatalf("binding after delta = %v", b)
	}
	st := fa.Stats()
	if st.Remaps != 2 || st.DeltaRemaps != 1 {
		t.Fatalf("stats after delta = %+v, want 2 remaps, 1 sparse", st)
	}
	if st.TasksRebound != n+2 {
		t.Fatalf("tasks rebound = %d, want %d (full) + 2 (delta)", st.TasksRebound, n+2)
	}

	// An epoch gap (3 was never applied) cannot trust the moved set:
	// the whole slice re-binds.
	gap := next.Clone()
	gap.ComputePU[1] = 11
	if applied, err := fa.ApplyRemap(Remap{Machine: "m", Epoch: 4, Assignment: gap, MovedTasks: []int{1}}); err != nil || !applied {
		t.Fatalf("gap remap = (%v, %v), want applied", applied, err)
	}
	st = fa.Stats()
	if st.DeltaRemaps != 1 {
		t.Fatalf("epoch gap took the sparse path: %+v", st)
	}
	if st.TasksRebound != n+2+n {
		t.Fatalf("tasks rebound = %d, want %d", st.TasksRebound, n+2+n)
	}
	if b := prog.Binding(); b[1] != 11 {
		t.Fatalf("gap remap lost task 1's move: %v", b)
	}
}

// TestFleetAdaptiveSparseRebindProjectsLease: the machine-global moved
// set is projected onto the lease's task range — moves outside it cost
// nothing.
func TestFleetAdaptiveSparseRebindProjectsLease(t *testing.T) {
	const leaseCount, base = 4, 4
	prog := orwl.MustProgram(leaseCount)
	fa := &FleetAdaptive{prog: prog, cfg: FleetAdaptiveConfig{TaskBase: base}, count: leaseCount}

	full := &Assignment{Strategy: "treematch", ComputePU: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	if applied, err := fa.ApplyRemap(Remap{Epoch: 1, Assignment: full}); err != nil || !applied {
		t.Fatalf("first remap = (%v, %v)", applied, err)
	}

	// Fleet tasks 1 (outside the lease) and 5 (local task 1) move.
	next := full.Clone()
	next.ComputePU[1] = 12
	next.ComputePU[5] = 13
	if applied, err := fa.ApplyRemap(Remap{Epoch: 2, Assignment: next, MovedTasks: []int{1, 5}}); err != nil || !applied {
		t.Fatalf("delta remap = (%v, %v)", applied, err)
	}
	b := prog.Binding()
	if b[1] != 13 {
		t.Fatalf("local task 1 bound to %d, want fleet task 5's new PU 13", b[1])
	}
	st := fa.Stats()
	if st.DeltaRemaps != 1 {
		t.Fatalf("stats = %+v, want one sparse remap", st)
	}
	if st.TasksRebound != leaseCount+1 {
		t.Fatalf("tasks rebound = %d, want %d (full) + 1 (the one local move)", st.TasksRebound, leaseCount+1)
	}
}
