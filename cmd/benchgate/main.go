// Command benchgate is the CI regression gate over benchjson files:
// it compares a fresh run against the recorded baseline and fails
// (exit 1) when a gated benchmark degrades beyond the tolerance.
//
//	scripts/bench.sh -o BENCH_FRESH.json
//	go run ./cmd/benchgate -baseline BENCH_PR8.json -fresh BENCH_FRESH.json
//
// Two families are gated, matching the acceptance-critical hot paths:
//
//   - ns/op benchmarks matched by -gate (default the TreeMatchMap
//     family): fresh ns/op must not exceed baseline by more than
//     -max-regress;
//   - the placeload transport comparison (PlaceloadPipelinedVsLockstep):
//     the pipelined-vs-lockstep speedup must not shrink by more than
//     -max-regress.
//
// Ratios, not absolute numbers, are compared where possible: the
// speedup is measured against the same machine's own lock-step run, so
// the gate tolerates slow CI hardware but catches a transport that
// stopped pipelining.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

// The benchjson file schema (the subset the gate reads).
type metrics struct {
	NsOp float64 `json:"ns_op"`
}

type entry struct {
	Before    *metrics `json:"before,omitempty"`
	After     *metrics `json:"after"`
	SpeedupNs float64  `json:"speedup_ns,omitempty"`
}

type file struct {
	Benches map[string]entry `json:"benches"`
}

func load(path string) (*file, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benches) == 0 {
		return nil, fmt.Errorf("%s: no benches recorded", path)
	}
	return &f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR6.json", "recorded baseline benchjson file")
	freshPath := flag.String("fresh", "", "fresh benchjson file to gate (required)")
	gate := flag.String("gate", "TreeMatchMap", "regexp of ns/op benchmarks to gate")
	speedupKey := flag.String("speedup", "PlaceloadPipelinedVsLockstep", "speedup entry to gate ('' skips)")
	maxRegress := flag.Float64("max-regress", 0.25, "tolerated fractional degradation")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	failed := 0
	checked := 0
	for name, b := range base.Benches {
		if !gateRE.MatchString(name) || b.After == nil || b.After.NsOp <= 0 {
			continue
		}
		f, ok := fresh.Benches[name]
		if !ok || f.After == nil {
			fmt.Printf("benchgate: FAIL %-40s missing from fresh run\n", name)
			failed++
			continue
		}
		checked++
		ratio := f.After.NsOp / b.After.NsOp
		verdict := "ok  "
		if ratio > 1+*maxRegress {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("benchgate: %s %-40s ns/op %10.0f -> %10.0f (%+.1f%%)\n",
			verdict, name, b.After.NsOp, f.After.NsOp, (ratio-1)*100)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no baseline benchmark matched %q\n", *gate)
		os.Exit(2)
	}

	if *speedupKey != "" {
		b, bok := base.Benches[*speedupKey]
		f, fok := fresh.Benches[*speedupKey]
		switch {
		case !bok || b.SpeedupNs <= 0:
			fmt.Fprintf(os.Stderr, "benchgate: baseline has no %s speedup\n", *speedupKey)
			os.Exit(2)
		case !fok || f.SpeedupNs <= 0:
			fmt.Printf("benchgate: FAIL %-40s missing from fresh run\n", *speedupKey)
			failed++
		default:
			ratio := f.SpeedupNs / b.SpeedupNs
			verdict := "ok  "
			if ratio < 1-*maxRegress {
				verdict = "FAIL"
				failed++
			}
			fmt.Printf("benchgate: %s %-40s speedup %6.1fx -> %6.1fx (%+.1f%%)\n",
				verdict, *speedupKey, b.SpeedupNs, f.SpeedupNs, (ratio-1)*100)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond %.0f%%\n", failed, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated benchmarks within tolerance")
}
