// Command benchjson runs the placement benchmarks with -benchmem and
// records them as machine-readable JSON, so the perf trajectory of the
// hot path is a committed artifact instead of scrollback. With a
// baseline file (see scripts/bench_baseline_pr3.json) each benchmark
// carries its "before" next to the fresh "after" plus the derived
// speedup ratios — the format of the BENCH_*.json trajectory files.
// Benchmarks without a baseline entry (the observed-traffic and
// adaptive-epoch additions of PR 5) record an "after" only; the
// instrumented/uninstrumented orwl pairs document the runtime
// counters' overhead.
//
// Usage:
//
//	benchjson [-o BENCH_PR10.json] [-bench regex] [-pkgs p1,p2] \
//	          [-benchtime 1s] [-baseline scripts/bench_baseline_pr3.json] \
//	          [-placeload 2s]
//
// With -placeload, the cmd/placeload transport driver also runs twice
// against an in-process daemon — once pinned to the pre-pipeline
// lock-step protocol, once with the pipelined defaults — and the pair
// is recorded as PlaceloadLockstepBaseline / PlaceloadPipelined plus a
// combined PlaceloadPipelinedVsLockstep entry whose speedup_ns is the
// placements/sec ratio and whose bytes_ratio is the warm request-bytes
// shrink factor (the PR 6 acceptance numbers).
//
// scripts/bench.sh wraps it with the repo defaults; CI uploads the
// result as an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Metrics is one benchmark measurement. Custom b.ReportMetric units
// (intra-volume, cost, ...) land in Extra.
type Metrics struct {
	Iters    int64              `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BytesOp  float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Entry pairs a benchmark's recorded baseline with the fresh run.
type Entry struct {
	Before *Metrics `json:"before,omitempty"`
	After  *Metrics `json:"after"`
	// SpeedupNs is before/after ns_op (higher is better).
	SpeedupNs float64 `json:"speedup_ns,omitempty"`
	// AllocRatio is before/after allocs_op (higher is better).
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
	// BytesRatio is before/after wire bytes per operation (higher is
	// better) — set on the placeload transport pair, where the metric
	// that matters besides latency is payload size.
	BytesRatio float64 `json:"bytes_ratio,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	Schema    string           `json:"schema"`
	Generated string           `json:"generated"`
	Go        string           `json:"go"`
	CPU       string           `json:"cpu,omitempty"`
	Bench     string           `json:"bench_regex"`
	Benchtime string           `json:"benchtime"`
	Benches   map[string]Entry `json:"benches"`
}

// defaultBench targets the placement hot-path benches across the
// layers: full Map (the TreeMatchMap family includes the PR 9
// 10ktasks-1kcores sparse partitioned case), engine cold/cached/burst,
// grouping engines, matrix pipeline, the placement RPC round trip, the
// runtime traffic counters (instrumented vs uninstrumented pairs) and
// the adaptive reconciliation epoch and the PR 10 schema v6 delta
// push (encode+decode+apply+sparse-rebind of a single-partition remap
// at 10k tasks; its extra metrics carry the push_bytes_ratio and
// rebind_ratio acceptance numbers).
const defaultBench = "TreeMatchMap|TreeMatchCold|TreeMatchCached|TreeMatchConcurrentBurst|" +
	"GroupGreedy|GroupExhaustive|MapRing160|SymmetrizedInto|ExtendInto|AggregateInto|" +
	"HeaviestPairsSparse|PlaceComputeRoundTrip|PlaceBatchRoundTrip|PlaceSequentialRoundTrip|" +
	"TrafficRecord|RawAcquireRelease|FifoPushPop|ObservedWindow|AdaptiveEpoch|RemapDeltaPush"

func defaultPkgs() []string {
	return []string{".", "./internal/placement", "./internal/treematch", "./internal/comm", "./internal/orwlnet", "./internal/orwl"}
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output JSON path")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkgs", strings.Join(defaultPkgs(), ","), "comma-separated packages to bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	baseline := flag.String("baseline", "", "JSON file with recorded before-metrics (a prior benchjson output or a bare name->metrics map)")
	placeload := flag.Duration("placeload", 0, "also run the cmd/placeload transport driver for this window per mode (0 skips it)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	args = append(args, strings.Split(*pkgs, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fail(fmt.Errorf("benchjson: go %s: %w", strings.Join(args, " "), err))
	}

	after, cpu := parseBenchOutput(string(raw))
	if len(after) == 0 {
		fail(fmt.Errorf("benchjson: no benchmarks matched %q", *bench))
	}

	before := map[string]*Metrics{}
	if *baseline != "" {
		before, err = readBaseline(*baseline)
		if err != nil {
			fail(err)
		}
	}

	file := File{
		Schema:    "orwlplace-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		CPU:       cpu,
		Bench:     *bench,
		Benchtime: *benchtime,
		Benches:   map[string]Entry{},
	}
	for name, m := range after {
		e := Entry{After: m, Before: before[name]}
		if e.Before != nil && m.NsOp > 0 {
			e.SpeedupNs = round2(e.Before.NsOp / m.NsOp)
			if m.AllocsOp > 0 {
				e.AllocRatio = round2(e.Before.AllocsOp / m.AllocsOp)
			}
		}
		file.Benches[name] = e
	}

	if *placeload > 0 {
		if err := runPlaceload(file.Benches, *placeload); err != nil {
			fail(err)
		}
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(file.Benches), *out)
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts name -> metrics from go test -bench
// output, plus the reported cpu line. Metric fields come in
// "<value> <unit>" pairs after the iteration count.
func parseBenchOutput(out string) (map[string]*Metrics, string) {
	res := map[string]*Metrics{}
	var cpu string
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		iters, _ := strconv.ParseInt(mm[2], 10, 64)
		m := &Metrics{Iters: iters}
		fields := strings.Fields(mm[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp = v
			case "B/op":
				m.BytesOp = v
			case "allocs/op":
				m.AllocsOp = v
			default:
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[fields[i+1]] = v
			}
		}
		res[mm[1]] = m
	}
	return res, cpu
}

// readBaseline accepts either a full benchjson File (before-metrics
// are taken from each entry's "after") or a bare name -> Metrics map.
func readBaseline(path string) (map[string]*Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err == nil && len(f.Benches) > 0 {
		out := map[string]*Metrics{}
		for name, e := range f.Benches {
			out[name] = e.After
		}
		return out, nil
	}
	var bare map[string]*Metrics
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("benchjson: %s: neither a benchjson file nor a name->metrics map: %w", path, err)
	}
	return bare, nil
}

// runPlaceload measures the daemon transport with cmd/placeload in
// both modes and records the pair: the lock-step baseline, the
// pipelined run, and a combined entry whose ratios are the PR 6
// acceptance numbers (throughput speedup, warm request-bytes shrink).
func runPlaceload(benches map[string]Entry, window time.Duration) error {
	run := func(baseline bool) (*Metrics, error) {
		args := []string{"run", "./cmd/placeload", "-json", "-duration", window.String()}
		if baseline {
			args = append(args, "-baseline")
		}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("benchjson: go %s: %w", strings.Join(args, " "), err)
		}
		var m Metrics
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("benchjson: placeload output: %w", err)
		}
		return &m, nil
	}
	before, err := run(true)
	if err != nil {
		return err
	}
	after, err := run(false)
	if err != nil {
		return err
	}
	benches["PlaceloadLockstepBaseline"] = Entry{After: before}
	benches["PlaceloadPipelined"] = Entry{After: after}
	pair := Entry{Before: before, After: after}
	if after.NsOp > 0 {
		pair.SpeedupNs = round2(before.NsOp / after.NsOp)
	}
	if b, a := before.Extra["req_bytes_per_place"], after.Extra["req_bytes_per_place"]; a > 0 {
		pair.BytesRatio = round2(b / a)
	}
	benches["PlaceloadPipelinedVsLockstep"] = pair
	return nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
