package main

import (
	"os"
	"path/filepath"
	"testing"

	"orwlplace/internal/comm"
	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/placement"
)

// TestInspectSnapshot drives the -inspect-snapshot dump mode over a
// real snapshot file: readable files exit 0, and the failure shapes an
// operator meets (missing file, damage, bound mismatch) all exit 1.
func TestInspectSnapshot(t *testing.T) {
	const n = 4000 // beyond the default 2896-task bound
	base := comm.NewSparse(n)
	base.AddSym(0, 1, 1<<20)
	base.AddSym(n-2, n-1, 7)
	s := &ctrlplane.Snapshot{
		NextLeaseID: 2,
		Leases: []ctrlplane.LeaseRecord{
			{Lease: ctrlplane.Lease{ID: 1, Machine: "big", Peer: "p", TaskBase: 0, TaskCount: n, Token: 0xfeed}, LastSeq: 3},
		},
		Machines: []ctrlplane.MachineRecord{{
			Name:  "big",
			Order: n,
			Epoch: 2,
			Latest: &ctrlplane.Remap{
				Machine:    "big",
				Epoch:      2,
				Drift:      0.5,
				Assignment: &placement.Assignment{Strategy: "treematch", ComputePU: make([]int, n)},
			},
			Base: base,
		}},
	}
	path := filepath.Join(t.TempDir(), "ctrl.snap")
	if err := ctrlplane.SaveSnapshot(path, s); err != nil {
		t.Fatal(err)
	}

	if code := inspectSnapshot(path, 8192); code != 0 {
		t.Fatalf("inspect with a matching bound exited %d, want 0", code)
	}
	// The default bound is smaller than this fleet: the dump must fail
	// the same way a restoring daemon would, not silently truncate.
	if code := inspectSnapshot(path, ctrlplane.DefaultMaxLeaseTasks); code != 1 {
		t.Fatalf("inspect under the default bound exited %d, want 1", code)
	}
	if code := inspectSnapshot(filepath.Join(t.TempDir(), "absent"), 8192); code != 1 {
		t.Fatalf("inspect of a missing file exited %d, want 1", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if code := inspectSnapshot(bad, 8192); code != 1 {
		t.Fatalf("inspect of a corrupt file exited %d, want 1", code)
	}
}
