// Command orwlnetd serves ORWL locations — and, with -place, a
// placement service for a fleet of machine topologies — over TCP, so
// separate processes can share locations with the ordered
// read-write-lock FIFO discipline and obtain topology-aware mappings
// from a central daemon (the distributed deployment of the ORWL
// model).
//
// Usage:
//
//	orwlnetd [-addr host:port] [-loc name:size ...] [-place] [-machine name ...] [-cache-entries n] [-conn-idle d]
//
// At least one of -loc or -place is required. -machine is repeatable
// and picks the topologies the placement service maps onto: named
// testbeds (see lstopo) and/or "host" for the machine the daemon runs
// on. The first -machine is the fleet's default — where requests that
// name no machine (including every pre-fleet v1 request) are routed;
// `PlaceRequest.Machine` selects any other, and PlaceBatch fans one
// request slice across the fleet in a single RPC. -cache-entries
// bounds each machine engine's mapping cache (0 disables caching).
//
// -conn-idle reaps connections that stay byte-silent for the duration
// with nothing in flight (e.g. "-conn-idle 5m"); a connection waiting
// on a parked Await or a computing placement is never reaped. The
// default 0 keeps connections forever, the historical behaviour.
//
// -adaptive (requires -place) hosts the fleet control plane: client
// processes lease task ranges, stream observed-traffic windows up, and
// subscribe to remaps; the daemon merges the windows per machine, runs
// a reconciliation epoch every -epoch-interval, and pushes adopted
// mappings to every subscriber. -drift-threshold, -adopt-after,
// -cooldown-epochs and -stale-after tune the loop.
//
// The daemon traps SIGINT/SIGTERM and drains in-flight calls before
// exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// locFlags collects repeated -loc name:size flags.
type locFlags map[string]int

func (l locFlags) String() string { return fmt.Sprintf("%d locations", len(l)) }

func (l locFlags) Set(v string) error {
	name, sizeStr, ok := strings.Cut(v, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:size, got %q", v)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size < 0 {
		return fmt.Errorf("bad size in %q", v)
	}
	if _, dup := l[name]; dup {
		return fmt.Errorf("duplicate location %q", name)
	}
	l[name] = size
	return nil
}

// machineFlags collects repeated -machine flags, rejecting duplicates
// (fleet names are routing keys).
type machineFlags []string

func (m *machineFlags) String() string { return strings.Join(*m, ",") }

func (m *machineFlags) Set(v string) error {
	for _, have := range *m {
		if have == v {
			return fmt.Errorf("duplicate machine %q", v)
		}
	}
	*m = append(*m, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "listen address")
	place := flag.Bool("place", false, "export a placement service")
	connIdle := flag.Duration("conn-idle", 0, "close connections idle (byte-silent with nothing in flight) for this long; 0 keeps them forever")
	adaptive := flag.Bool("adaptive", false, "host the fleet control plane: merge client-reported traffic, reconcile per machine, push adopted remaps (requires -place)")
	epochInterval := flag.Duration("epoch-interval", time.Second, "reconciliation epoch cadence with -adaptive")
	driftThreshold := flag.Float64("drift-threshold", 0, "observed-traffic drift that triggers recomputation (0 keeps the built-in default)")
	adoptAfter := flag.Int("adopt-after", 1, "consecutive over-threshold epochs before a recompute is attempted (hysteresis)")
	cooldownEpochs := flag.Int("cooldown-epochs", 0, "epochs to hold after an adoption before the next one")
	staleAfter := flag.Duration("stale-after", 0, "evict a lease whose peer has not reported for this long (0 keeps the built-in default, negative never evicts)")
	cacheEntries := flag.Int("cache-entries", -1, "mapping-cache capacity per machine engine (0 disables caching, -1 keeps the built-in default)")
	machines := machineFlags{}
	flag.Var(&machines, "machine", "machine the placement service maps onto (repeatable; the first is the fleet default): host, "+strings.Join(topology.MachineNames(), ", "))
	locSpec := locFlags{}
	flag.Var(locSpec, "loc", "location to export as name:size (repeatable)")
	flag.Parse()
	if len(locSpec) == 0 && !*place {
		fmt.Fprintln(os.Stderr, "orwlnetd: nothing to serve: need -loc name:size and/or -place")
		os.Exit(2)
	}

	if *adaptive && !*place {
		fmt.Fprintln(os.Stderr, "orwlnetd: -adaptive requires -place (the control plane reconciles the placement fleet)")
		os.Exit(2)
	}

	var opts []orwlnet.ServerOption
	if *connIdle > 0 {
		opts = append(opts, orwlnet.WithIdleTimeout(*connIdle))
	}
	var ctrl *ctrlplane.Controller
	if *place {
		if len(machines) == 0 {
			machines = machineFlags{"host"}
		}
		var engOpts []placement.EngineOption
		if *cacheEntries >= 0 {
			engOpts = append(engOpts, placement.WithCacheEntries(*cacheEntries))
		}
		fleet := placement.NewMultiService()
		pus := 0
		for _, name := range machines {
			top, err := pickMachine(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(2)
			}
			if err := fleet.AddMachine(name, top, engOpts...); err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			pus += top.NumPUs()
		}
		opts = append(opts, orwlnet.WithPlacement(fleet))
		fmt.Printf("orwlnetd: placement fleet of %d machine(s) [%s], default %s (%d PUs total, strategies: %s)\n",
			len(machines), strings.Join(fleet.Machines(), ", "), fleet.DefaultMachine(),
			pus, strings.Join(placement.Names(), ", "))
		if *adaptive {
			cfg := ctrlplane.Config{
				Adaptive: placement.AdaptiveConfig{
					DriftThreshold: *driftThreshold,
					AdoptAfter:     *adoptAfter,
					CooldownEpochs: *cooldownEpochs,
				},
				StaleAfter: *staleAfter,
			}
			var err error
			ctrl, err = ctrlplane.NewController(fleet, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			opts = append(opts, orwlnet.WithControlPlane(ctrl))
			fmt.Printf("orwlnetd: fleet control plane on (epoch %v, adopt-after %d, cooldown %d)\n",
				*epochInterval, *adoptAfter, *cooldownEpochs)
		}
	}

	locs := make(map[string]*orwl.Location, len(locSpec))
	if len(locSpec) > 0 {
		prog := orwl.MustProgram(1)
		for name, size := range locSpec {
			loc, err := prog.AddLocation(orwl.Loc(0, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			loc.Scale(size)
			locs[name] = loc
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}
	srv, err := orwlnet.NewServer(lis, locs, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}

	// The control plane's epoch loop runs beside the server and stops
	// with it; adopted remaps are logged so operators (and the CI smoke
	// test) can follow the fleet's reconciliation.
	ctrlCtx, ctrlStop := context.WithCancel(context.Background())
	defer ctrlStop()
	if ctrl != nil {
		go ctrl.Run(ctrlCtx, *epochInterval, func(machine string, rep *placement.EpochReport, err error) {
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "orwlnetd: epoch %s: %v\n", machine, err)
			case rep.Adopted:
				ev := ctrl.Latest(machine)
				if ev != nil {
					fmt.Printf("orwlnetd: adopted remap machine=%s epoch=%d drift=%.3f\n", machine, ev.Epoch, ev.Drift)
				}
			}
		})
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting and let
	// Server.Close drain the per-connection goroutines, so no client is
	// dropped mid-frame. Close blocks until the drain completes, so the
	// process only exits once every in-flight call has been answered.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	fmt.Printf("orwlnetd: serving %d locations on %s\n", len(locs), lis.Addr())
	select {
	case sig := <-sigs:
		fmt.Printf("orwlnetd: %v: draining...\n", sig)
		ctrlStop()
		srv.Close()
		<-serveErr
		fmt.Println("orwlnetd: drained, bye")
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
			os.Exit(1)
		}
	}
}

// pickMachine resolves -machine: the synthetic testbeds by name, or
// the host approximation.
func pickMachine(name string) (*topology.Topology, error) {
	if name == "host" {
		return topology.Host(), nil
	}
	return topology.ByName(name)
}
