// Command orwlnetd serves ORWL locations — and, with -place, a
// placement service for a fleet of machine topologies — over TCP, so
// separate processes can share locations with the ordered
// read-write-lock FIFO discipline and obtain topology-aware mappings
// from a central daemon (the distributed deployment of the ORWL
// model).
//
// Usage:
//
//	orwlnetd [-addr host:port] [-loc name:size ...] [-place] [-machine name ...] [-cache-entries n] [-conn-idle d]
//	         [-adaptive] [-snapshot-path file] [-snapshot-interval d] [-snapshot-keep n] [-stats-addr host:port]
//	         [-report-rate r] [-report-burst b] [-report-max-bytes n] [-report-max-rows n] [-report-bandwidth bps]
//	         [-max-lease-tasks n]
//	orwlnetd -inspect-snapshot file [-max-lease-tasks n]
//
// At least one of -loc or -place is required. -machine is repeatable
// and picks the topologies the placement service maps onto: named
// testbeds (see lstopo) and/or "host" for the machine the daemon runs
// on. The first -machine is the fleet's default — where requests that
// name no machine (including every pre-fleet v1 request) are routed;
// `PlaceRequest.Machine` selects any other, and PlaceBatch fans one
// request slice across the fleet in a single RPC. -cache-entries
// bounds each machine engine's mapping cache (0 disables caching).
//
// -conn-idle reaps connections that stay byte-silent for the duration
// with nothing in flight (e.g. "-conn-idle 5m"); a connection waiting
// on a parked Await or a computing placement is never reaped. The
// default 0 keeps connections forever, the historical behaviour.
//
// -adaptive (requires -place) hosts the fleet control plane: client
// processes lease task ranges, stream observed-traffic windows up, and
// subscribe to remaps; the daemon merges the windows per machine, runs
// a reconciliation epoch every -epoch-interval, and pushes adopted
// mappings to every subscriber. -drift-threshold, -adopt-after,
// -cooldown-epochs and -stale-after tune the loop.
//
// -snapshot-path makes the control plane durable: the lease table,
// per-machine epochs and the latest adopted remaps are written to the
// file atomically every -snapshot-interval and once more on graceful
// drain, and restored on the next start (a missing file starts fresh
// silently; a corrupt or version-skewed one logs a warning and starts
// fresh). A daemon restarted with the same -snapshot-path resumes its
// epoch counters, so reconnecting clients see a continuous epoch
// stream instead of a reset.
//
// -snapshot-keep N retains the last N snapshot generations instead of
// overwriting one file: each save shifts file → file.1 → … →
// file.(N-1) before writing fresh, and restore picks the newest
// generation that passes its checksum — a snapshot corrupted by a
// crash or a bad disk block falls back to the previous one instead of
// forcing a cold start.
//
// -stats-addr (requires -place) serves the daemon's live ServiceStats
// — placement counters, transport NetStats, control-plane FleetStats
// including the delta/full remap push split — as JSON over HTTP:
// GET /stats returns the snapshot, and /debug/vars exposes the same
// object through the standard expvar surface for generic scrapers.
// The endpoint is read-only and binds separately from the RPC
// listener, so it can stay on localhost while the daemon serves the
// fleet.
//
// -max-lease-tasks raises (or lowers) the largest global task index the
// control plane accepts — in lease registrations and when validating a
// restored snapshot. The default matches the wire protocol's historic
// 2896-task ceiling; the merged fleet matrix is sparse, so a raised
// bound costs O(observed pairs), not O(n²). A snapshot written under a
// raised bound only restores under the same (or a larger) bound.
//
// -inspect-snapshot dumps a control-plane snapshot file — checksum
// status, schema version, every lease, and each machine's epoch,
// adopted mapping and baseline matrix density — then exits without
// starting a daemon. Pair it with -max-lease-tasks when inspecting a
// snapshot from a raised-bound deployment.
//
// Hostile-peer hardening (with -adaptive): -report-rate/-report-burst
// throttle each lease's observed-report cadence (a spammer gets a
// retryable rate-limit error, other peers are unaffected), and
// -report-max-bytes/-report-max-rows/-report-bandwidth cap what one
// connection may push at the decoder.
//
// The daemon traps SIGINT/SIGTERM and drains in-flight calls before
// exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"orwlplace/internal/ctrlplane"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// locFlags collects repeated -loc name:size flags.
type locFlags map[string]int

func (l locFlags) String() string { return fmt.Sprintf("%d locations", len(l)) }

func (l locFlags) Set(v string) error {
	name, sizeStr, ok := strings.Cut(v, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:size, got %q", v)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size < 0 {
		return fmt.Errorf("bad size in %q", v)
	}
	if _, dup := l[name]; dup {
		return fmt.Errorf("duplicate location %q", name)
	}
	l[name] = size
	return nil
}

// machineFlags collects repeated -machine flags, rejecting duplicates
// (fleet names are routing keys).
type machineFlags []string

func (m *machineFlags) String() string { return strings.Join(*m, ",") }

func (m *machineFlags) Set(v string) error {
	for _, have := range *m {
		if have == v {
			return fmt.Errorf("duplicate machine %q", v)
		}
	}
	*m = append(*m, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "listen address")
	place := flag.Bool("place", false, "export a placement service")
	connIdle := flag.Duration("conn-idle", 0, "close connections idle (byte-silent with nothing in flight) for this long; 0 keeps them forever")
	adaptive := flag.Bool("adaptive", false, "host the fleet control plane: merge client-reported traffic, reconcile per machine, push adopted remaps (requires -place)")
	epochInterval := flag.Duration("epoch-interval", time.Second, "reconciliation epoch cadence with -adaptive")
	driftThreshold := flag.Float64("drift-threshold", 0, "observed-traffic drift that triggers recomputation (0 keeps the built-in default)")
	adoptAfter := flag.Int("adopt-after", 1, "consecutive over-threshold epochs before a recompute is attempted (hysteresis)")
	cooldownEpochs := flag.Int("cooldown-epochs", 0, "epochs to hold after an adoption before the next one")
	staleAfter := flag.Duration("stale-after", 0, "evict a lease whose peer has not reported for this long (0 keeps the built-in default, negative never evicts)")
	maxLeaseTasks := flag.Int("max-lease-tasks", ctrlplane.DefaultMaxLeaseTasks, "largest global task index the control plane accepts in lease registrations and snapshot restores (the merged fleet matrix is sparse, so raising it costs O(nnz), not O(n²))")
	inspectSnap := flag.String("inspect-snapshot", "", "dump the given control-plane snapshot (leases, epochs, matrix density, checksum status) and exit without starting a daemon")
	snapPath := flag.String("snapshot-path", "", "persist the control plane (leases, epochs, adopted remaps) to this file and restore it on startup (requires -adaptive)")
	snapInterval := flag.Duration("snapshot-interval", 10*time.Second, "cadence of periodic snapshots with -snapshot-path (a final snapshot is always taken on graceful drain)")
	snapKeep := flag.Int("snapshot-keep", 1, "snapshot generations to retain with -snapshot-path: each save rotates file -> file.1 -> ... and restore falls back to the newest generation whose checksum verifies")
	statsAddr := flag.String("stats-addr", "", "serve read-only ServiceStats as JSON over HTTP on this address (GET /stats, expvar at /debug/vars; requires -place)")
	reportRate := flag.Float64("report-rate", 0, "per-lease observed-report rate limit in reports/sec (0 = unlimited); a throttled peer gets a retryable error, others are unaffected")
	reportBurst := flag.Float64("report-burst", 0, "burst allowance for -report-rate (0 = the rate itself)")
	reportMaxBytes := flag.Int("report-max-bytes", 0, "refuse observed-report frames larger than this many bytes (0 = the protocol's 64MiB ceiling)")
	reportMaxRows := flag.Int("report-max-rows", 0, "refuse observed reports whose delta matrix exceeds this order (0 = the protocol ceiling)")
	reportBandwidth := flag.Float64("report-bandwidth", 0, "per-connection observed-report byte budget in bytes/sec (0 = unlimited)")
	cacheEntries := flag.Int("cache-entries", -1, "mapping-cache capacity per machine engine (0 disables caching, -1 keeps the built-in default)")
	machines := machineFlags{}
	flag.Var(&machines, "machine", "machine the placement service maps onto (repeatable; the first is the fleet default): host, "+strings.Join(topology.MachineNames(), ", "))
	locSpec := locFlags{}
	flag.Var(locSpec, "loc", "location to export as name:size (repeatable)")
	flag.Parse()
	if *maxLeaseTasks <= 0 {
		fmt.Fprintln(os.Stderr, "orwlnetd: -max-lease-tasks must be positive")
		os.Exit(2)
	}
	if *inspectSnap != "" {
		os.Exit(inspectSnapshot(*inspectSnap, *maxLeaseTasks))
	}
	if len(locSpec) == 0 && !*place {
		fmt.Fprintln(os.Stderr, "orwlnetd: nothing to serve: need -loc name:size and/or -place")
		os.Exit(2)
	}

	if *adaptive && !*place {
		fmt.Fprintln(os.Stderr, "orwlnetd: -adaptive requires -place (the control plane reconciles the placement fleet)")
		os.Exit(2)
	}
	if *snapPath != "" && !*adaptive {
		fmt.Fprintln(os.Stderr, "orwlnetd: -snapshot-path requires -adaptive (only the control plane has durable state)")
		os.Exit(2)
	}
	if *snapKeep < 1 {
		fmt.Fprintln(os.Stderr, "orwlnetd: -snapshot-keep must be at least 1")
		os.Exit(2)
	}
	if *statsAddr != "" && !*place {
		fmt.Fprintln(os.Stderr, "orwlnetd: -stats-addr requires -place (the stats endpoint serves the placement service description)")
		os.Exit(2)
	}

	var opts []orwlnet.ServerOption
	if *connIdle > 0 {
		opts = append(opts, orwlnet.WithIdleTimeout(*connIdle))
	}
	var ctrl *ctrlplane.Controller
	if *place {
		if len(machines) == 0 {
			machines = machineFlags{"host"}
		}
		var engOpts []placement.EngineOption
		if *cacheEntries >= 0 {
			engOpts = append(engOpts, placement.WithCacheEntries(*cacheEntries))
		}
		fleet := placement.NewMultiService()
		pus := 0
		for _, name := range machines {
			top, err := pickMachine(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(2)
			}
			if err := fleet.AddMachine(name, top, engOpts...); err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			pus += top.NumPUs()
		}
		opts = append(opts, orwlnet.WithPlacement(fleet))
		fmt.Printf("orwlnetd: placement fleet of %d machine(s) [%s], default %s (%d PUs total, strategies: %s)\n",
			len(machines), strings.Join(fleet.Machines(), ", "), fleet.DefaultMachine(),
			pus, strings.Join(placement.Names(), ", "))
		if *adaptive {
			burst := *reportBurst
			if burst <= 0 {
				burst = *reportRate
			}
			cfg := ctrlplane.Config{
				Adaptive: placement.AdaptiveConfig{
					DriftThreshold: *driftThreshold,
					AdoptAfter:     *adoptAfter,
					CooldownEpochs: *cooldownEpochs,
				},
				StaleAfter:    *staleAfter,
				ReportRate:    *reportRate,
				ReportBurst:   burst,
				MaxLeaseTasks: *maxLeaseTasks,
			}
			var err error
			ctrl, err = ctrlplane.NewController(fleet, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			opts = append(opts, orwlnet.WithControlPlane(ctrl))
			if *reportMaxBytes > 0 || *reportMaxRows > 0 || *reportBandwidth > 0 {
				opts = append(opts, orwlnet.WithReportCaps(*reportMaxBytes, *reportMaxRows, *reportBandwidth, 0))
			}
			fmt.Printf("orwlnetd: fleet control plane on (epoch %v, adopt-after %d, cooldown %d)\n",
				*epochInterval, *adoptAfter, *cooldownEpochs)
			if *snapPath != "" {
				restoreSnapshot(ctrl, *snapPath, *maxLeaseTasks, *snapKeep)
			}
		}
	}

	locs := make(map[string]*orwl.Location, len(locSpec))
	if len(locSpec) > 0 {
		prog := orwl.MustProgram(1)
		for name, size := range locSpec {
			loc, err := prog.AddLocation(orwl.Loc(0, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
				os.Exit(1)
			}
			loc.Scale(size)
			locs[name] = loc
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}
	srv, err := orwlnet.NewServer(lis, locs, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}

	// The stats endpoint binds before the daemon announces itself, so a
	// scraper started right after the banner never races the listener.
	if *statsAddr != "" {
		statsLis, err := startStatsServer(*statsAddr, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orwlnetd: stats endpoint: %v\n", err)
			os.Exit(1)
		}
		defer statsLis.Close()
		fmt.Printf("orwlnetd: stats endpoint on http://%s/stats\n", statsLis.Addr())
	}

	// The control plane's epoch loop runs beside the server and stops
	// with it; adopted remaps are logged so operators (and the CI smoke
	// test) can follow the fleet's reconciliation.
	ctrlCtx, ctrlStop := context.WithCancel(context.Background())
	defer ctrlStop()
	if ctrl != nil {
		go ctrl.Run(ctrlCtx, *epochInterval, func(machine string, rep *placement.EpochReport, err error) {
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "orwlnetd: epoch %s: %v\n", machine, err)
			case rep.Adopted:
				ev := ctrl.Latest(machine)
				if ev != nil {
					fmt.Printf("orwlnetd: adopted remap machine=%s epoch=%d drift=%.3f\n", machine, ev.Epoch, ev.Drift)
				}
			}
		})
	}

	// Periodic snapshots run beside the epoch loop: losing the daemon
	// between ticks costs at most one interval of control-plane state
	// (clients re-lease and the reconciler re-primes for the rest).
	if ctrl != nil && *snapPath != "" && *snapInterval > 0 {
		go func() {
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctrlCtx.Done():
					return
				case <-tick.C:
					saveSnapshot(ctrl, *snapPath, *snapKeep)
				}
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting and let
	// Server.Close drain the per-connection goroutines, so no client is
	// dropped mid-frame. Close blocks until the drain completes, so the
	// process only exits once every in-flight call has been answered.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	fmt.Printf("orwlnetd: serving %d locations on %s\n", len(locs), lis.Addr())
	select {
	case sig := <-sigs:
		fmt.Printf("orwlnetd: %v: draining...\n", sig)
		ctrlStop()
		srv.Close()
		<-serveErr
		if ctrl != nil && *snapPath != "" {
			// Final snapshot after the drain: every acknowledged report
			// and adopted epoch is in it.
			saveSnapshot(ctrl, *snapPath, *snapKeep)
		}
		fmt.Println("orwlnetd: drained, bye")
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
			os.Exit(1)
		}
	}
}

// restoreSnapshot loads the control plane's state from the newest
// valid generation under path (see -snapshot-keep), validated against
// the daemon's lease-task bound (a snapshot written under a raised
// -max-lease-tasks only restores under the same bound). A missing file
// is a normal first start; when every present generation is unreadable
// — truncated, bit-flipped, written by an incompatible version — it
// logs a warning and starts fresh rather than refusing to serve.
func restoreSnapshot(ctrl *ctrlplane.Controller, path string, maxTasks, keep int) {
	s, source, err := ctrlplane.LoadSnapshotNewestLimit(path, maxTasks, keep)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return
	case err != nil:
		fmt.Fprintf(os.Stderr, "orwlnetd: snapshot %s unusable (%v): starting fresh\n", path, err)
		return
	}
	if err := ctrl.Restore(s); err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: snapshot %s not restorable (%v): starting fresh\n", source, err)
		return
	}
	var maxEpoch uint64
	for _, mr := range s.Machines {
		if mr.Epoch > maxEpoch {
			maxEpoch = mr.Epoch
		}
	}
	fmt.Printf("orwlnetd: resumed from snapshot %s: %d lease(s), %d machine(s), max epoch %d\n",
		source, len(s.Leases), len(s.Machines), maxEpoch)
}

// saveSnapshot persists the control plane's state, rotating the last
// keep generations; failures are logged and the daemon keeps serving
// (durability is best-effort, service is not).
func saveSnapshot(ctrl *ctrlplane.Controller, path string, keep int) {
	if err := ctrlplane.SaveSnapshotRotate(path, ctrl.Snapshot(), keep); err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: snapshot %s: %v\n", path, err)
	}
}

// startStatsServer binds the read-only stats endpoint: GET /stats
// answers the daemon's live ServiceStats as JSON, and /debug/vars
// exposes the same snapshot through the standard expvar surface (the
// shape generic scrapers already understand).
func startStatsServer(addr string, srv *orwlnet.Server) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvar.Publish("orwlplace", expvar.Func(func() any {
		st, err := srv.ServiceStats(context.Background())
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return st
	}))
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := srv.ServiceStats(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	go http.Serve(lis, mux)
	return lis, nil
}

// inspectSnapshot dumps a control-plane snapshot for operators: the
// container facts (version, checksum), every lease, and every
// machine's epoch, adopted mapping and baseline density — without
// starting a daemon or binding a socket. Returns the process exit
// code: 0 for a readable snapshot, 1 otherwise.
func inspectSnapshot(path string, maxTasks int) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		return 1
	}
	fmt.Printf("snapshot %s: %d bytes\n", path, len(data))
	version, crcOK, err := ctrlplane.SnapshotFileInfo(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		return 1
	}
	status := "ok"
	if !crcOK {
		status = "MISMATCH"
	}
	fmt.Printf("version %d (daemon writes %d), checksum %s\n", version, ctrlplane.SnapshotVersion, status)
	s, err := ctrlplane.DecodeSnapshotLimit(data, maxTasks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		return 1
	}
	fmt.Printf("next lease id %d\n", s.NextLeaseID)
	fmt.Printf("leases: %d\n", len(s.Leases))
	for _, lr := range s.Leases {
		owned := "no"
		if lr.Token != 0 {
			owned = "yes"
		}
		fmt.Printf("  lease %d machine=%s peer=%s tasks=[%d,+%d) owned=%s last-seq=%d\n",
			lr.ID, lr.Machine, lr.Peer, lr.TaskBase, lr.TaskCount, owned, lr.LastSeq)
	}
	fmt.Printf("machines: %d\n", len(s.Machines))
	for _, mr := range s.Machines {
		fmt.Printf("  machine %s order=%d epoch=%d\n", mr.Name, mr.Order, mr.Epoch)
		if mr.Latest != nil && mr.Latest.Assignment != nil {
			a := mr.Latest.Assignment
			parts := 0
			if a.Partitions != nil {
				parts = len(a.Partitions.Parts)
			}
			fmt.Printf("    adopted epoch=%d drift=%.3f strategy=%s tasks=%d partitions=%d\n",
				mr.Latest.Epoch, mr.Latest.Drift, a.Strategy, len(a.ComputePU), parts)
		}
		if mr.Base != nil {
			n, nnz := mr.Base.Order(), mr.Base.NNZ()
			density := 0.0
			if n > 0 {
				density = 100 * float64(nnz) / (float64(n) * float64(n))
			}
			fmt.Printf("    baseline order=%d nnz=%d density=%.2f%%\n", n, nnz, density)
		}
	}
	return 0
}

// pickMachine resolves -machine: the synthetic testbeds by name, or
// the host approximation.
func pickMachine(name string) (*topology.Topology, error) {
	if name == "host" {
		return topology.Host(), nil
	}
	return topology.ByName(name)
}
