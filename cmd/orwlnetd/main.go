// Command orwlnetd serves ORWL locations over TCP so that separate
// processes can share them with the ordered read-write-lock FIFO
// discipline (the distributed deployment of the ORWL model).
//
// Usage:
//
//	orwlnetd [-addr host:port] -loc name:size [-loc name:size ...]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
)

// locFlags collects repeated -loc name:size flags.
type locFlags map[string]int

func (l locFlags) String() string { return fmt.Sprintf("%d locations", len(l)) }

func (l locFlags) Set(v string) error {
	name, sizeStr, ok := strings.Cut(v, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:size, got %q", v)
	}
	size, err := strconv.Atoi(sizeStr)
	if err != nil || size < 0 {
		return fmt.Errorf("bad size in %q", v)
	}
	if _, dup := l[name]; dup {
		return fmt.Errorf("duplicate location %q", name)
	}
	l[name] = size
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "listen address")
	locSpec := locFlags{}
	flag.Var(locSpec, "loc", "location to export as name:size (repeatable)")
	flag.Parse()
	if len(locSpec) == 0 {
		fmt.Fprintln(os.Stderr, "orwlnetd: at least one -loc name:size required")
		os.Exit(2)
	}

	prog := orwl.MustProgram(1)
	locs := make(map[string]*orwl.Location, len(locSpec))
	for name, size := range locSpec {
		loc, err := prog.AddLocation(orwl.Loc(0, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
			os.Exit(1)
		}
		loc.Scale(size)
		locs[name] = loc
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}
	srv, err := orwlnet.NewServer(lis, locs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("orwlnetd: serving %d locations on %s\n", len(locs), lis.Addr())
	if err := srv.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "orwlnetd: %v\n", err)
		os.Exit(1)
	}
}
