// Command placeload drives a placement daemon at sustained load and
// reports what the transport delivers: warm placements per second,
// p50/p99 call latency, and bytes on the wire per placement. It is the
// measuring instrument for the protoPipeline transport — run it twice,
// once pinned to the pre-pipeline protocol (-baseline: one connection,
// one call in flight, dense matrices) and once with the pipelined
// defaults, and the pair is the before/after recorded in
// BENCH_PR6.json.
//
// Usage:
//
//	placeload [-addr host:port] [-machine smp20e7] [-tasks 160] \
//	          [-conns 4] [-inflight 32] [-duration 2s] [-batch 8] \
//	          [-baseline] [-json]
//
// Without -addr it self-serves: an in-process daemon on a loopback
// port with the -machine topology, so one command measures the full
// client/server transport without external setup. The workload is the
// repo's benchmark pattern — a wrapped communication ring of -tasks
// entities at 1 MiB volume — placed with the treematch strategy, so
// warm calls exercise exactly the daemon's mapping-cache hot path.
//
// -json emits one benchjson-style metrics object (iters, ns_op,
// extra{placements_per_sec, p50_ns, p99_ns, req_bytes_per_place,
// batch_req_bytes_per_slot, ...}) for cmd/benchjson to pair.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"orwlplace/internal/comm"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

// metrics mirrors cmd/benchjson's Metrics JSON shape, so -json output
// pastes straight into the BENCH_*.json trajectory.
type metrics struct {
	Iters    int64              `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BytesOp  float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "daemon address; empty self-serves an in-process daemon on loopback")
	machine := flag.String("machine", "smp20e7", "machine topology the self-served daemon maps onto")
	tasks := flag.Int("tasks", 160, "ring size: entities in the workload matrix")
	conns := flag.Int("conns", 4, "connections in the client pool")
	inflight := flag.Int("inflight", 32, "concurrent placement calls kept in flight")
	duration := flag.Duration("duration", 2*time.Second, "measurement window")
	batchSlots := flag.Int("batch", 8, "slots in the warm PlaceBatch payload measurement (0 skips it)")
	baseline := flag.Bool("baseline", false, "measure the pre-pipeline transport: one connection, one call in flight, protocol <= v3 (lock-step, dense matrices)")
	jsonOut := flag.Bool("json", false, "emit one benchjson-style metrics object instead of prose")
	flag.Parse()

	if err := run(*addr, *machine, *tasks, *conns, *inflight, *duration, *batchSlots, *baseline, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "placeload: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, machine string, tasks, conns, inflight int, duration time.Duration, batchSlots int, baseline, jsonOut bool) error {
	ctx := context.Background()

	if addr == "" {
		top, err := topology.ByName(machine)
		if err != nil {
			return err
		}
		fleet := placement.NewMultiService()
		if err := fleet.AddMachine(machine, top); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(fleet))
		if err != nil {
			return err
		}
		go srv.Serve()
		defer srv.Close()
		addr = lis.Addr().String()
	}

	dialOpts := []orwlnet.DialOption{orwlnet.WithPoolSize(conns)}
	if baseline {
		// The pre-pipeline shape: a single connection whose placement
		// calls run lock-step, carrying dense matrices — what every
		// client before protoPipeline was.
		conns, inflight = 1, 1
		dialOpts = []orwlnet.DialOption{
			orwlnet.WithPoolSize(1),
			orwlnet.WithMaxProtocol(orwlnet.ProtoAdaptive),
		}
	}
	svc, err := orwlnet.DialPlacementService(ctx, addr, dialOpts...)
	if err != nil {
		return err
	}
	defer svc.Close()

	m := comm.Ring(tasks, 1<<20, true)
	// The matrix never changes, so hash it once up front — the steady
	// state a real caller placing one workload reaches too.
	req := &placement.PlaceRequest{
		Strategy: placement.TreeMatch,
		Matrix:   m,
		MatrixFP: comm.Fingerprint(m),
		Entities: tasks,
	}

	// Prime: fills the daemon's mapping cache and (on v4) its
	// seen-matrix table, so the measured window is the warm steady
	// state the acceptance numbers are about.
	if _, err := svc.Place(ctx, req); err != nil {
		return err
	}

	in0, out0 := svc.WirePoolStats()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []int64
		errs int
	)
	deadline := time.Now().Add(duration)
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []int64
			fails := 0
			for time.Now().Before(deadline) {
				start := time.Now()
				if _, err := svc.Place(ctx, req); err != nil {
					fails++
					continue
				}
				local = append(local, time.Since(start).Nanoseconds())
			}
			mu.Lock()
			lats = append(lats, local...)
			errs += fails
			mu.Unlock()
		}()
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	in1, out1 := svc.WirePoolStats()

	total := int64(len(lats))
	if total == 0 {
		return fmt.Errorf("no placement completed in %v (%d errors)", duration, errs)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	perSec := float64(total) / elapsed.Seconds()
	reqBytes := float64(out1-out0) / float64(total)
	respBytes := float64(in1-in0) / float64(total)

	// Warm batch payload: one PlaceBatch of identical warm slots,
	// measured by the write-side byte delta — the per-slot request cost
	// the sparse/fingerprint encodings shrink.
	batchBytes := 0.0
	if batchSlots > 0 {
		reqs := make([]*placement.PlaceRequest, batchSlots)
		for i := range reqs {
			reqs[i] = req
		}
		_, b0 := svc.WirePoolStats()
		if _, err := svc.PlaceBatch(ctx, reqs); err != nil {
			return fmt.Errorf("warm batch: %w", err)
		}
		_, b1 := svc.WirePoolStats()
		batchBytes = float64(b1-b0) / float64(batchSlots)
	}

	res := metrics{
		Iters: total,
		NsOp:  float64(elapsed.Nanoseconds()) / float64(total),
		Extra: map[string]float64{
			"placements_per_sec":   perSec,
			"p50_ns":               float64(pct(lats, 50)),
			"p99_ns":               float64(pct(lats, 99)),
			"req_bytes_per_place":  reqBytes,
			"resp_bytes_per_place": respBytes,
			"errors":               float64(errs),
			"conns":                float64(conns),
			"inflight":             float64(inflight),
		},
	}
	if batchSlots > 0 {
		res.Extra["batch_req_bytes_per_slot"] = batchBytes
	}

	if jsonOut {
		data, err := json.Marshal(&res)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	mode := "pipelined"
	if baseline {
		mode = "lock-step baseline"
	}
	fmt.Printf("placeload (%s): %d placements in %v on %d conn(s) x %d in flight\n", mode, total, elapsed.Round(time.Millisecond), conns, inflight)
	fmt.Printf("  throughput: %.0f placements/sec\n", perSec)
	fmt.Printf("  latency:    p50 %v, p99 %v\n", time.Duration(pct(lats, 50)), time.Duration(pct(lats, 99)))
	fmt.Printf("  wire:       %.0f B/place out, %.0f B/place in", reqBytes, respBytes)
	if batchSlots > 0 {
		fmt.Printf(", warm batch %.0f B/slot out", batchBytes)
	}
	fmt.Println()
	if errs > 0 {
		fmt.Printf("  errors:     %d\n", errs)
	}
	return nil
}

// pct returns the p-th percentile of sorted ns latencies.
func pct(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
