// Command lstopo renders the synthetic machine topologies, in the
// spirit of hwloc's lstopo tool.
//
// Usage:
//
//	lstopo [-m machine] [-json]
//
// Machines: smp12e5 (default), smp20e7, fig2, tinyht, tinyflat.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orwlplace/internal/topology"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: "+strings.Join(topology.MachineNames(), ", "))
	asJSON := flag.Bool("json", false, "emit JSON instead of the tree rendering")
	flag.Parse()

	top, err := topology.ByName(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lstopo: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		data, err := top.MarshalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lstopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	if err := top.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lstopo: %v\n", err)
		os.Exit(1)
	}
}
