// Command lstopo renders the synthetic machine topologies, in the
// spirit of hwloc's lstopo tool.
//
// Usage:
//
//	lstopo [-m machine] [-json]
//
// Machines: smp12e5 (default), smp20e7, fig2, tinyht, tinyflat.
package main

import (
	"flag"
	"fmt"
	"os"

	"orwlplace/internal/topology"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: smp12e5, smp20e7, fig2, tinyht, tinyflat")
	asJSON := flag.Bool("json", false, "emit JSON instead of the tree rendering")
	flag.Parse()

	builders := map[string]func() *topology.Topology{
		"smp12e5":  topology.SMP12E5,
		"smp20e7":  topology.SMP20E7,
		"fig2":     topology.Fig2Machine,
		"tinyht":   topology.TinyHT,
		"tinyflat": topology.TinyFlat,
	}
	build, ok := builders[*machine]
	if !ok {
		fmt.Fprintf(os.Stderr, "lstopo: unknown machine %q\n", *machine)
		os.Exit(1)
	}
	top := build()
	if *asJSON {
		data, err := top.MarshalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lstopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	if err := top.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "lstopo: %v\n", err)
		os.Exit(1)
	}
}
