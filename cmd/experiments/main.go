// Command experiments regenerates the tables and figures of the
// paper's evaluation section on the simulated testbeds.
//
// Usage:
//
//	experiments [-run id] [-list]
//
// Artifact ids: fig1, fig2, fig3, table1, fig4, table2, fig5, table3, fig6,
// table4, summary. Without -run, everything is produced in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"orwlplace/internal/experiments"
)

func main() {
	run := flag.String("run", "", "only produce artifacts with this id (e.g. fig4)")
	list := flag.Bool("list", false, "list artifact ids and exit")
	outDir := flag.String("o", "", "also write artifacts as files into this directory (fig1 additionally as PGM image)")
	flag.Parse()

	arts, err := experiments.All()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *outDir != "" {
		if err := writeFiles(*outDir, arts); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *list {
		seen := map[string]bool{}
		for _, a := range arts {
			if !seen[a.ID] {
				fmt.Println(a.ID)
				seen[a.ID] = true
			}
		}
		return
	}
	matched := false
	for _, a := range arts {
		if *run != "" && a.ID != *run {
			continue
		}
		matched = true
		fmt.Println(a.Text)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: no artifact %q (try -list)\n", *run)
		os.Exit(1)
	}
}

// writeFiles stores every artifact as <id>[-n].txt in dir, and the
// Fig. 1 communication matrix additionally as a PGM image.
func writeFiles(dir string, arts []experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	counts := map[string]int{}
	for _, a := range arts {
		name := a.ID
		counts[a.ID]++
		if counts[a.ID] > 1 {
			name = fmt.Sprintf("%s-%d", a.ID, counts[a.ID])
		}
		if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(a.Text), 0o644); err != nil {
			return err
		}
	}
	m, _, err := experiments.Fig1()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "fig1.pgm"), m.RenderPGM(8), 0o644)
}
