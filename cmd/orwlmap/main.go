// Command orwlmap maps a communication matrix onto a machine with the
// paper's Algorithm 1 and reports the placement, its cost, and how it
// compares to every bound strategy in the placement registry.
//
// Usage:
//
//	orwlmap [-m machine] [-control] [-matrix file | -pattern name -n N]
//
// The matrix file uses the text format of internal/comm (order on the
// first line, then rows). Built-in patterns: ring, pipeline, stencil,
// clustered, uniform, random.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"orwlplace/internal/comm"
	"orwlplace/internal/core"
	"orwlplace/internal/ompenv"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

func main() {
	machine := flag.String("m", "fig2", "machine: "+strings.Join(topology.MachineNames(), ", "))
	matrixPath := flag.String("matrix", "", "path to a communication matrix file")
	pattern := flag.String("pattern", "ring", "built-in pattern: ring, pipeline, stencil, clustered, uniform, random")
	n := flag.Int("n", 8, "entity count for built-in patterns")
	control := flag.Bool("control", true, "account for runtime control threads")
	ompPlaces := flag.String("omp-places", "", "evaluate an OMP_PLACES value as an extra strategy")
	ompBind := flag.String("omp-proc-bind", "", "OMP_PROC_BIND value for -omp-places")
	kmp := flag.String("kmp-affinity", "", "evaluate a KMP_AFFINITY value as an extra strategy")
	gomp := flag.String("gomp-cpu-affinity", "", "evaluate a GOMP_CPU_AFFINITY value as an extra strategy")
	flag.Parse()

	top, err := topology.ByName(*machine)
	if err != nil {
		fail(err)
	}
	m, err := loadMatrix(*matrixPath, *pattern, *n)
	if err != nil {
		fail(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		fail(err)
	}

	tm, err := eng.Compute(placement.TreeMatch, m, 0, placement.Options{ControlThreads: *control})
	if err != nil {
		fail(err)
	}
	fmt.Print(core.RenderMapping(tm.Mapping(top), nil))

	fmt.Printf("\n%-16s %12s %14s\n", "strategy", "cost", "cross-NUMA B")
	report := func(name string, pus []int) {
		cost, err := treematch.Cost(top, m, pus)
		if err != nil {
			fail(err)
		}
		cross, err := treematch.CrossNUMAVolume(top, m, pus)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-16s %12.0f %14.0f\n", name, cost, cross)
	}
	// Every bound strategy in the registry, the affinity module first
	// (registration order).
	for _, name := range placement.Names() {
		if name == placement.TreeMatch {
			report(name, tm.ComputePU)
			continue
		}
		a, err := eng.Compute(name, m, 0, placement.Options{})
		if err != nil {
			fail(err)
		}
		if a.Unbound {
			continue // no binding to cost
		}
		report(name, a.ComputePU)
	}
	// Optional OpenMP-style environment configuration as an extra row.
	if *ompPlaces != "" || *ompBind != "" || *kmp != "" || *gomp != "" {
		settings, err := ompenv.Parse(*ompPlaces, *ompBind, *kmp, *gomp)
		if err != nil {
			fail(err)
		}
		pus, err := settings.Placement(top, m.Order())
		if err != nil {
			fail(err)
		}
		if pus == nil {
			fmt.Printf("%-16s %12s %14s\n", "env (unbound)", "-", "-")
		} else {
			report("env", pus)
		}
	}
}

func loadMatrix(path, pattern string, n int) (*comm.Matrix, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return comm.Read(f)
	}
	switch pattern {
	case "ring":
		return comm.Ring(n, 1<<20, true), nil
	case "pipeline":
		return comm.Ring(n, 1<<20, false), nil
	case "stencil":
		gx, gy := nearSquare(n)
		return comm.Stencil2D(gx, gy, 1<<16, 1<<16), nil
	case "clustered":
		k := 2
		for n%k != 0 {
			k++
		}
		return comm.Clustered(n, k, 1<<20, 1<<10), nil
	case "uniform":
		return comm.Uniform(n, 1<<16), nil
	case "random":
		return comm.Random(n, 1<<20, 1), nil
	default:
		return nil, fmt.Errorf("orwlmap: unknown pattern %q", pattern)
	}
}

func nearSquare(n int) (int, int) {
	gy := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			gy = d
		}
	}
	return n / gy, gy
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
