// Command simulate runs a workload (JSON, see internal/perfsim
// ReadJSON) through the placement model on a chosen machine, comparing
// every strategy registered in the placement engine — the paper's
// affinity module, the oblivious environment policies and the unbound
// OS scheduler. It is the standalone face of the evaluation pipeline:
// describe your application's threads and communication, and see what
// automatic placement would buy.
//
// With -fleet the workload is instead batch-placed across every
// registered testbed in a single PlaceBatch RPC against a placement
// daemon — the paper's cross-machine comparison (Table I: where would
// this communication pattern land, and at what modeled cost, on each
// machine?), served remotely. -daemon points at a running `orwlnetd
// -place -machine ...`; without it a loopback fleet daemon over all
// testbeds is started in-process, so the RPC path is exercised either
// way.
//
// With -adaptive the workload is replayed as a phase-shifting trace
// through the closed placement loop: the declared pattern runs for
// -shift-1 epochs, then the traffic permutes into a structure the
// initial mapping is wrong for. Each epoch the reconciler measures
// drift against the matrix backing the current mapping and re-places
// when the perfsim-modeled gain beats the modeled migration cost. The
// table compares the modeled seconds of keeping the initial static
// mapping against letting the loop react.
//
// With -chaos (requires -adaptive) the replay additionally loses
// observed windows at random — the trace a fleet daemon sees when
// client reports are dropped on the wire. A lost epoch feeds the
// reconciler an empty window: drift cannot be measured, the hysteresis
// streak resets, and reaction is delayed until a window survives. The
// loss schedule is seeded (-chaos-seed), so a run is reproducible.
//
// Usage:
//
// With -scale n the tool instead exercises the sparse partitioned
// mapping path at fleet size: a ring-of-clusters affinity of n tasks
// (O(n) nonzeros, no dense n² anywhere) is mapped onto the 1024-core
// fleet1k testbed, timed cold and cached — the CI large-scale smoke.
//
// Usage:
//
//	simulate -w workload.json [-m machine] [-seed n]
//	simulate -demo            # built-in demo workload (K23, 64 cores)
//	simulate -demo -fleet [-daemon host:port]
//	simulate -demo -adaptive [-epochs n] [-shift k]
//	simulate -demo -adaptive -chaos [-loss p] [-chaos-seed n]
//	simulate -scale 10000     # sparse 10k-task mapping smoke
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"orwlplace"
	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/comm"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: "+strings.Join(topology.MachineNames(), ", "))
	path := flag.String("w", "", "workload JSON file")
	demo := flag.Bool("demo", false, "use the built-in demo workload instead of -w")
	seed := flag.Int64("seed", 42, "seed for the simulated OS scheduler")
	fleet := flag.Bool("fleet", false, "batch-place the workload across every testbed in one RPC instead of simulating on -m")
	daemon := flag.String("daemon", "", "with -fleet: address of a running fleet daemon (orwlnetd -place); empty starts one in-process")
	adaptive := flag.Bool("adaptive", false, "replay the workload as a phase-shifting trace through the adaptive re-placement loop")
	epochs := flag.Int("epochs", 8, "with -adaptive: epochs to replay")
	shift := flag.Int("shift", 4, "with -adaptive: epoch at which the communication pattern shifts")
	chaos := flag.Bool("chaos", false, "with -adaptive: lose observed windows at random, as a daemon under report loss would")
	loss := flag.Float64("loss", 0.4, "with -chaos: probability an epoch's observed window is lost")
	chaosSeed := flag.Int64("chaos-seed", 2, "with -chaos: seed of the loss schedule (reproducible runs)")
	scale := flag.Int("scale", 0, "large-scale smoke: map a sparse ring-of-clusters of this many tasks onto the fleet1k testbed and report wall-clock (skips the workload simulation)")
	flag.Parse()

	if *scale > 0 {
		if err := runScale(*scale); err != nil {
			fail(err)
		}
		return
	}

	w, err := loadWorkload(*path, *demo)
	if err != nil {
		fail(err)
	}
	if *fleet {
		if err := runFleet(w, *daemon); err != nil {
			fail(err)
		}
		return
	}
	if *adaptive {
		lossProb := 0.0
		if *chaos {
			lossProb = *loss
		}
		if err := runAdaptive(w, *machine, *epochs, *shift, *seed, lossProb, *chaosSeed); err != nil {
			fail(err)
		}
		return
	}
	if *chaos {
		fail(fmt.Errorf("simulate: -chaos requires -adaptive (it injects loss into the replayed trace)"))
	}

	top, err := topology.ByName(*machine)
	if err != nil {
		fail(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %q: %d threads, %d iterations on %s\n\n",
		w.Name, len(w.Threads), w.Iterations, top.Attrs.Name)

	fmt.Printf("%-22s %12s %14s %14s %10s\n", "strategy", "seconds", "L3 misses", "stalled cyc", "migrations")
	// The strategy runs are independent: fan them out across goroutines
	// (the engine is concurrency-safe) and print in registry order.
	names := placement.Names()
	type run struct {
		r   *perfsim.Result
		a   *placement.Assignment
		err error
	}
	runs := make([]run, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			// The affinity module runs with the paper's control-thread
			// accounting; the baselines have no options to tune.
			opt := placement.Options{}
			if name == placement.TreeMatch {
				opt.ControlThreads = true
			}
			runs[i].r, runs[i].a, runs[i].err = eng.Simulate(name, w, opt, *seed)
		}(i, name)
	}
	wg.Wait()
	results := map[string]*perfsim.Result{}
	var affinityMode fmt.Stringer
	for i, name := range names {
		if runs[i].err != nil {
			fail(runs[i].err)
		}
		label := name
		if name == placement.None {
			label = "none (os-scheduler)"
		}
		r := runs[i].r
		fmt.Printf("%-22s %12.3f %14.3g %14.3g %10.0f\n",
			label, r.Seconds, r.L3Misses, r.StalledCycles, r.CPUMigrations)
		results[name] = r
		if name == placement.TreeMatch {
			affinityMode = runs[i].a.Mode
		}
	}

	aff, dyn := results[placement.TreeMatch], results[placement.None]
	if aff != nil && dyn != nil && aff.Seconds > 0 {
		fmt.Printf("\naffinity speedup over the OS scheduler: %.2fx (control mode: %s)\n",
			dyn.Seconds/aff.Seconds, affinityMode)
	}
}

// runScale is the large-scale placement smoke: a sparse ring-of-
// clusters affinity of roughly n tasks mapped onto the 1024-core
// fleet1k testbed through the partitioned treematch path. Nothing on
// this path materializes n² state; the wall-clock it prints is the
// CI budget check for the 10k-task acceptance bar.
func runScale(n int) error {
	const clusterSize = 40
	clusters := n / clusterSize
	if clusters < 2 {
		return fmt.Errorf("simulate: -scale %d is below the %d-task minimum", n, 2*clusterSize)
	}
	tasks := clusters * clusterSize
	top := topology.Fleet1K()
	a := comm.RingOfClusters(clusters, clusterSize, 1<<20, 1<<12)
	eng, err := placement.NewEngine(top)
	if err != nil {
		return err
	}
	start := time.Now()
	asg, cached, err := eng.ComputeAffinity(placement.TreeMatch, a, 0, placement.Options{})
	cold := time.Since(start)
	if err != nil {
		return err
	}
	if cached {
		return fmt.Errorf("simulate: first large-scale mapping claims to be cached")
	}
	parts := 0
	if asg.Partitions != nil {
		parts = len(asg.Partitions.Parts)
	}
	fmt.Printf("large-scale: mapped %d tasks (%d nonzeros) onto %d PUs in %v (%d partitions)\n",
		tasks, a.NNZ(), top.NumPUs(), cold.Round(time.Microsecond), parts)
	start = time.Now()
	if _, cached, err = eng.ComputeAffinity(placement.TreeMatch, a, 0, placement.Options{}); err != nil {
		return err
	}
	warm := time.Since(start)
	if !cached {
		return fmt.Errorf("simulate: repeated large-scale mapping missed the cache")
	}
	fmt.Printf("large-scale: cached recall in %v\n", warm.Round(time.Microsecond))
	return nil
}

// runFleet batch-places the workload's communication matrix onto
// every machine of a fleet daemon in a single RPC and prints the
// cross-machine comparison. With no daemon address, a loopback fleet
// over all registered testbeds is served in-process.
func runFleet(w *perfsim.Workload, daemonAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if daemonAddr == "" {
		fleet, err := orwlplace.NewFleet(topology.MachineNames())
		if err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(fleet))
		if err != nil {
			return err
		}
		go srv.Serve()
		defer srv.Close()
		daemonAddr = lis.Addr().String()
		fmt.Printf("in-process fleet daemon on %s\n", daemonAddr)
	}

	c, err := orwlnet.DialContext(ctx, daemonAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		return err
	}
	stats, err := remote.Stats(ctx)
	if err != nil {
		return err
	}
	if len(stats.Machines) == 0 {
		return fmt.Errorf("simulate: daemon at %s serves no fleet machines", daemonAddr)
	}

	reqs := make([]*placement.PlaceRequest, len(stats.Machines))
	for i, m := range stats.Machines {
		reqs[i] = &placement.PlaceRequest{
			Machine:  m,
			Strategy: placement.TreeMatch,
			Matrix:   w.Comm,
			Options:  placement.Options{ControlThreads: true},
		}
	}
	start := time.Now()
	resps, err := remote.PlaceBatch(ctx, reqs)
	if err != nil {
		return err
	}
	rtt := time.Since(start)

	fmt.Printf("workload %q: %d threads batch-placed across %d machines in one RPC (%.2fms round trip)\n\n",
		w.Name, len(w.Threads), len(stats.Machines), float64(rtt.Nanoseconds())/1e6)
	fmt.Printf("%-12s %14s %16s %10s %12s\n", "machine", "cost", "cross-NUMA", "cache", "daemon ms")
	for i, resp := range resps {
		if resp.Err != "" {
			fmt.Printf("%-12s %s\n", stats.Machines[i], resp.Err)
			continue
		}
		hit := "miss"
		if resp.CacheHit {
			hit = "hit"
		}
		fmt.Printf("%-12s %14.3g %16.3g %10s %12.2f\n",
			resp.Machine, resp.Cost, resp.CrossNUMAVolume, hit, float64(resp.ElapsedNS)/1e6)
	}
	// The schema v5 stats tail: all zeros unless the daemon hosts the
	// fleet control plane (orwlnetd -adaptive) and clients feed it.
	if final, err := remote.Stats(ctx); err == nil {
		fs := final.Fleet
		fmt.Printf("\nfleet control plane: reports=%d peers=%d remaps-pushed=%d stale-evicted=%d watchers=%d\n",
			fs.ReportsReceived, fs.PeersTracked, fs.RemapsPushed, fs.StalePeersEvicted, fs.Watchers)
	}
	return nil
}

// phaseScript feeds the reconciler one matrix per epoch. A non-zero
// loss probability makes it lossy: a lost epoch hands the reconciler
// an empty window — the traffic happened, the report did not arrive —
// and wasLost records it for the replay table.
type phaseScript struct {
	matrices []*comm.Matrix
	next     int

	rng     *rand.Rand // nil = lossless
	loss    float64
	wasLost bool
	lost    int
}

func (s *phaseScript) Name() string { return "replay" }

func (s *phaseScript) Matrix() (*comm.Matrix, error) {
	i := s.next
	if i >= len(s.matrices) {
		i = len(s.matrices) - 1
	} else {
		s.next++
	}
	m := s.matrices[i]
	s.wasLost = s.rng != nil && s.rng.Float64() < s.loss
	if s.wasLost {
		s.lost++
		return comm.NewMatrix(m.Order()), nil
	}
	return m, nil
}

// shufflePerm is the block-transpose permutation that turns neighbour
// affinity into stride-k affinity: the shifted phase keeps the
// workload's volume profile but lands its heavy pairs on entities the
// initial mapping scattered across the machine.
func shufflePerm(n int) []int {
	k := 4
	for ; k > 1; k-- {
		if n%k == 0 {
			break
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i%k)*(n/k) + i/k
	}
	return perm
}

// homogenize flattens the workload's thread profile to its average:
// the adaptive replay studies communication-structure drift, and with
// heterogeneous threads a permuted pattern also reshuffles which
// compute profile pairs with which traffic — noise that would swamp
// the placement signal the replay demonstrates.
func homogenize(w *perfsim.Workload) *perfsim.Workload {
	out := *w
	var cc, ws, mt float64
	for _, th := range w.Threads {
		cc += th.ComputeCycles
		ws += th.WorkingSet
		mt += th.MemoryTraffic
	}
	n := float64(len(w.Threads))
	avg := perfsim.Thread{ComputeCycles: cc / n, WorkingSet: ws / n, MemoryTraffic: mt / n}
	out.Threads = make([]perfsim.Thread, len(w.Threads))
	for i := range out.Threads {
		out.Threads[i] = avg
	}
	return &out
}

// runAdaptive replays the workload as a phase-shifting trace through
// the closed placement loop and prints the static-vs-adaptive
// comparison.
func runAdaptive(w *perfsim.Workload, machine string, epochs, shift int, seed int64, loss float64, chaosSeed int64) error {
	if epochs < 1 {
		return fmt.Errorf("simulate: -epochs must be positive")
	}
	if shift < 2 || shift > epochs {
		return fmt.Errorf("simulate: -shift must fall inside 2..epochs (%d)", epochs)
	}
	top, err := topology.ByName(machine)
	if err != nil {
		return err
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		return err
	}
	w = homogenize(w)
	n := len(w.Threads)
	phaseA := w.Comm
	phaseB, err := phaseA.Permuted(shufflePerm(n))
	if err != nil {
		return err
	}
	fmt.Printf("workload %q: %d threads on %s, %d epochs, pattern shift at epoch %d (drift %.2f)\n\n",
		w.Name, n, top.Attrs.Name, epochs, shift, placement.Drift(phaseA, phaseB))

	script := &phaseScript{}
	if loss > 0 {
		script.rng = rand.New(rand.NewSource(chaosSeed))
		script.loss = loss
		fmt.Printf("chaos: each epoch's observed window is lost with probability %.2f (seed %d)\n\n", loss, chaosSeed)
	}
	patterns := make([]*comm.Matrix, epochs)
	for e := 0; e < epochs; e++ {
		if e+1 < shift {
			patterns[e] = phaseA
		} else {
			patterns[e] = phaseB
		}
	}
	script.matrices = patterns

	horizon := w.Iterations
	if horizon < 1 {
		horizon = 1
	}
	// A remap adopted at the end of the shift epoch serves the epochs
	// after it (the shift epoch itself already ran under the old
	// mapping — reaction lags by one epoch): that is the window the
	// migration cost amortizes over.
	remaining := (epochs - shift) * horizon
	if remaining < 1 {
		remaining = 1
	}
	rec, err := placement.NewReconciler(eng, script, nil, placement.AdaptiveConfig{
		// The paper's affinity module binds control threads; the loop
		// and the oracle below use the same options so the comparison
		// isolates the communication shift.
		Options:  placement.Options{ControlThreads: true},
		Workload: w,
		Horizon:  remaining,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	if err := rec.Prime(placement.Fixed("declared", phaseA)); err != nil {
		return err
	}
	static := rec.Current()

	model := func(pattern *comm.Matrix, a *placement.Assignment) (float64, error) {
		epochW := *w
		epochW.Comm = pattern
		epochW.Iterations = horizon
		res, err := perfsim.Simulate(top, &epochW, eng.SimPlacement(a, seed))
		if err != nil {
			return 0, err
		}
		return res.Seconds, nil
	}

	fmt.Printf("%-6s %-9s %8s %-8s %12s %12s %12s\n",
		"epoch", "pattern", "drift", "action", "static s", "adaptive s", "remap cost s")
	var staticTotal, adaptiveTotal float64
	for e := 0; e < epochs; e++ {
		// The mapping in force during the epoch is whatever the loop
		// decided at the end of the previous one: reaction lags the
		// shift by one epoch, as it would against live counters.
		inForce := rec.Current()
		sSec, err := model(patterns[e], static)
		if err != nil {
			return err
		}
		aSec, err := model(patterns[e], inForce)
		if err != nil {
			return err
		}
		staticTotal += sSec
		adaptiveTotal += aSec

		rep, err := rec.Epoch()
		if err != nil {
			return err
		}
		action := "keep"
		switch {
		case script.wasLost:
			// The window never reached the loop: no drift measurement,
			// and the hysteresis streak starts over.
			action = "lost"
		case rep.Adopted:
			action = "REMAP"
			// The switch itself is not free: charge the modeled
			// migration cost to the adaptive trajectory.
			adaptiveTotal += rep.CostSeconds
		case rep.Recomputed:
			action = "reject"
		}
		name := "declared"
		if patterns[e] == phaseB {
			name = "shifted"
		}
		fmt.Printf("%-6d %-9s %8.3f %-8s %12.4f %12.4f %12.6f\n",
			e+1, name, rep.Drift, action, sSec, aSec, rep.CostSeconds)
	}

	st := rec.Stats()
	if loss > 0 {
		fmt.Printf("\nloop: %d epochs (%d windows lost), %d drift alarms, %d remaps, %d rejected\n",
			st.Epochs, script.lost, st.DriftEpochs, st.Remaps, st.Rejected)
	} else {
		fmt.Printf("\nloop: %d epochs, %d drift alarms, %d remaps, %d rejected\n",
			st.Epochs, st.DriftEpochs, st.Remaps, st.Rejected)
	}

	oracleSec := 0.0
	for e := 0; e < epochs; e++ {
		oracle, err := eng.Compute(placement.TreeMatch, patterns[e], n, placement.Options{ControlThreads: true})
		if err != nil {
			return err
		}
		sec, err := model(patterns[e], oracle)
		if err != nil {
			return err
		}
		oracleSec += sec
	}
	fmt.Printf("modeled totals: static %.4fs, adaptive %.4fs, oracle %.4fs\n", staticTotal, adaptiveTotal, oracleSec)
	if gap := staticTotal - oracleSec; gap > 0 {
		fmt.Printf("adaptive placement recovered %.0f%% of the modeled cost gap over the static mapping\n",
			100*(staticTotal-adaptiveTotal)/gap)
	} else {
		fmt.Println("no modeled gap between static and oracle mappings on this trace")
	}
	return nil
}

func loadWorkload(path string, demo bool) (*perfsim.Workload, error) {
	if demo || path == "" {
		if !demo {
			return nil, fmt.Errorf("simulate: -w workload.json or -demo required")
		}
		return livermore.Profile(16384, 64, 100)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfsim.ReadJSON(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
