// Command simulate runs a workload (JSON, see internal/perfsim
// ReadJSON) through the placement model on a chosen machine, comparing
// every strategy registered in the placement engine — the paper's
// affinity module, the oblivious environment policies and the unbound
// OS scheduler. It is the standalone face of the evaluation pipeline:
// describe your application's threads and communication, and see what
// automatic placement would buy.
//
// Usage:
//
//	simulate -w workload.json [-m machine] [-seed n]
//	simulate -demo            # built-in demo workload (K23, 64 cores)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: "+strings.Join(topology.MachineNames(), ", "))
	path := flag.String("w", "", "workload JSON file")
	demo := flag.Bool("demo", false, "use the built-in demo workload instead of -w")
	seed := flag.Int64("seed", 42, "seed for the simulated OS scheduler")
	flag.Parse()

	top, err := topology.ByName(*machine)
	if err != nil {
		fail(err)
	}
	w, err := loadWorkload(*path, *demo)
	if err != nil {
		fail(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %q: %d threads, %d iterations on %s\n\n",
		w.Name, len(w.Threads), w.Iterations, top.Attrs.Name)

	fmt.Printf("%-22s %12s %14s %14s %10s\n", "strategy", "seconds", "L3 misses", "stalled cyc", "migrations")
	// The strategy runs are independent: fan them out across goroutines
	// (the engine is concurrency-safe) and print in registry order.
	names := placement.Names()
	type run struct {
		r   *perfsim.Result
		a   *placement.Assignment
		err error
	}
	runs := make([]run, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			// The affinity module runs with the paper's control-thread
			// accounting; the baselines have no options to tune.
			opt := placement.Options{}
			if name == placement.TreeMatch {
				opt.ControlThreads = true
			}
			runs[i].r, runs[i].a, runs[i].err = eng.Simulate(name, w, opt, *seed)
		}(i, name)
	}
	wg.Wait()
	results := map[string]*perfsim.Result{}
	var affinityMode fmt.Stringer
	for i, name := range names {
		if runs[i].err != nil {
			fail(runs[i].err)
		}
		label := name
		if name == placement.None {
			label = "none (os-scheduler)"
		}
		r := runs[i].r
		fmt.Printf("%-22s %12.3f %14.3g %14.3g %10.0f\n",
			label, r.Seconds, r.L3Misses, r.StalledCycles, r.CPUMigrations)
		results[name] = r
		if name == placement.TreeMatch {
			affinityMode = runs[i].a.Mode
		}
	}

	aff, dyn := results[placement.TreeMatch], results[placement.None]
	if aff != nil && dyn != nil && aff.Seconds > 0 {
		fmt.Printf("\naffinity speedup over the OS scheduler: %.2fx (control mode: %s)\n",
			dyn.Seconds/aff.Seconds, affinityMode)
	}
}

func loadWorkload(path string, demo bool) (*perfsim.Workload, error) {
	if demo || path == "" {
		if !demo {
			return nil, fmt.Errorf("simulate: -w workload.json or -demo required")
		}
		return livermore.Profile(16384, 64, 100)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfsim.ReadJSON(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
