// Command simulate runs a workload (JSON, see internal/perfsim
// ReadJSON) through the placement model on a chosen machine, comparing
// the paper's affinity module against the oblivious strategies and the
// simulated OS scheduler. It is the standalone face of the evaluation
// pipeline: describe your application's threads and communication, and
// see what automatic placement would buy.
//
// Usage:
//
//	simulate -w workload.json [-m machine] [-seed n]
//	simulate -demo            # built-in demo workload (K23, 64 cores)
package main

import (
	"flag"
	"fmt"
	"os"

	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: smp12e5, smp20e7, fig2, tinyht, tinyflat")
	path := flag.String("w", "", "workload JSON file")
	demo := flag.Bool("demo", false, "use the built-in demo workload instead of -w")
	seed := flag.Int64("seed", 42, "seed for the simulated OS scheduler")
	flag.Parse()

	top, err := pickMachine(*machine)
	if err != nil {
		fail(err)
	}
	w, err := loadWorkload(*path, *demo)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %q: %d threads, %d iterations on %s\n\n",
		w.Name, len(w.Threads), w.Iterations, top.Attrs.Name)

	fmt.Printf("%-22s %12s %14s %14s %10s\n", "configuration", "seconds", "L3 misses", "stalled cyc", "migrations")
	show := func(name string, r *perfsim.Result, err error) {
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-22s %12.3f %14.3g %14.3g %10.0f\n",
			name, r.Seconds, r.L3Misses, r.StalledCycles, r.CPUMigrations)
	}

	dyn, err := perfsim.Simulate(top, w, &perfsim.Placement{
		Dynamic: &perfsim.DynamicPolicy{Policy: perfsim.PolicyFor(top), Seed: *seed},
	})
	show("os-scheduler", dyn, err)

	for _, s := range []treematch.Strategy{
		treematch.StrategyCompact, treematch.StrategyCompactCores, treematch.StrategyScatter,
	} {
		place, err := treematch.Place(top, len(w.Threads), s)
		if err != nil {
			fail(err)
		}
		r, err := perfsim.Simulate(top, w, &perfsim.Placement{ComputePU: place, LocalAlloc: true})
		show(s.String(), r, err)
	}

	mp, err := treematch.Map(top, w.Comm, treematch.Options{ControlThreads: true})
	if err != nil {
		fail(err)
	}
	aff, err := perfsim.Simulate(top, w, &perfsim.Placement{
		ComputePU: mp.ComputePU, ControlPU: mp.ControlPU, LocalAlloc: true,
	})
	show("affinity-module", aff, err)
	if aff.Seconds > 0 {
		fmt.Printf("\naffinity speedup over the OS scheduler: %.2fx (control mode: %s)\n",
			dyn.Seconds/aff.Seconds, mp.Mode)
	}
}

func pickMachine(name string) (*topology.Topology, error) {
	switch name {
	case "smp12e5":
		return topology.SMP12E5(), nil
	case "smp20e7":
		return topology.SMP20E7(), nil
	case "fig2":
		return topology.Fig2Machine(), nil
	case "tinyht":
		return topology.TinyHT(), nil
	case "tinyflat":
		return topology.TinyFlat(), nil
	default:
		return nil, fmt.Errorf("simulate: unknown machine %q", name)
	}
}

func loadWorkload(path string, demo bool) (*perfsim.Workload, error) {
	if demo || path == "" {
		if !demo {
			return nil, fmt.Errorf("simulate: -w workload.json or -demo required")
		}
		return livermore.Profile(16384, 64, 100)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfsim.ReadJSON(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
