// Command simulate runs a workload (JSON, see internal/perfsim
// ReadJSON) through the placement model on a chosen machine, comparing
// every strategy registered in the placement engine — the paper's
// affinity module, the oblivious environment policies and the unbound
// OS scheduler. It is the standalone face of the evaluation pipeline:
// describe your application's threads and communication, and see what
// automatic placement would buy.
//
// With -fleet the workload is instead batch-placed across every
// registered testbed in a single PlaceBatch RPC against a placement
// daemon — the paper's cross-machine comparison (Table I: where would
// this communication pattern land, and at what modeled cost, on each
// machine?), served remotely. -daemon points at a running `orwlnetd
// -place -machine ...`; without it a loopback fleet daemon over all
// testbeds is started in-process, so the RPC path is exercised either
// way.
//
// Usage:
//
//	simulate -w workload.json [-m machine] [-seed n]
//	simulate -demo            # built-in demo workload (K23, 64 cores)
//	simulate -demo -fleet [-daemon host:port]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"orwlplace"
	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

func main() {
	machine := flag.String("m", "smp12e5", "machine: "+strings.Join(topology.MachineNames(), ", "))
	path := flag.String("w", "", "workload JSON file")
	demo := flag.Bool("demo", false, "use the built-in demo workload instead of -w")
	seed := flag.Int64("seed", 42, "seed for the simulated OS scheduler")
	fleet := flag.Bool("fleet", false, "batch-place the workload across every testbed in one RPC instead of simulating on -m")
	daemon := flag.String("daemon", "", "with -fleet: address of a running fleet daemon (orwlnetd -place); empty starts one in-process")
	flag.Parse()

	w, err := loadWorkload(*path, *demo)
	if err != nil {
		fail(err)
	}
	if *fleet {
		if err := runFleet(w, *daemon); err != nil {
			fail(err)
		}
		return
	}

	top, err := topology.ByName(*machine)
	if err != nil {
		fail(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %q: %d threads, %d iterations on %s\n\n",
		w.Name, len(w.Threads), w.Iterations, top.Attrs.Name)

	fmt.Printf("%-22s %12s %14s %14s %10s\n", "strategy", "seconds", "L3 misses", "stalled cyc", "migrations")
	// The strategy runs are independent: fan them out across goroutines
	// (the engine is concurrency-safe) and print in registry order.
	names := placement.Names()
	type run struct {
		r   *perfsim.Result
		a   *placement.Assignment
		err error
	}
	runs := make([]run, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			// The affinity module runs with the paper's control-thread
			// accounting; the baselines have no options to tune.
			opt := placement.Options{}
			if name == placement.TreeMatch {
				opt.ControlThreads = true
			}
			runs[i].r, runs[i].a, runs[i].err = eng.Simulate(name, w, opt, *seed)
		}(i, name)
	}
	wg.Wait()
	results := map[string]*perfsim.Result{}
	var affinityMode fmt.Stringer
	for i, name := range names {
		if runs[i].err != nil {
			fail(runs[i].err)
		}
		label := name
		if name == placement.None {
			label = "none (os-scheduler)"
		}
		r := runs[i].r
		fmt.Printf("%-22s %12.3f %14.3g %14.3g %10.0f\n",
			label, r.Seconds, r.L3Misses, r.StalledCycles, r.CPUMigrations)
		results[name] = r
		if name == placement.TreeMatch {
			affinityMode = runs[i].a.Mode
		}
	}

	aff, dyn := results[placement.TreeMatch], results[placement.None]
	if aff != nil && dyn != nil && aff.Seconds > 0 {
		fmt.Printf("\naffinity speedup over the OS scheduler: %.2fx (control mode: %s)\n",
			dyn.Seconds/aff.Seconds, affinityMode)
	}
}

// runFleet batch-places the workload's communication matrix onto
// every machine of a fleet daemon in a single RPC and prints the
// cross-machine comparison. With no daemon address, a loopback fleet
// over all registered testbeds is served in-process.
func runFleet(w *perfsim.Workload, daemonAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if daemonAddr == "" {
		fleet, err := orwlplace.NewFleet(topology.MachineNames()...)
		if err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := orwlnet.NewServer(lis, nil, orwlnet.WithPlacement(fleet))
		if err != nil {
			return err
		}
		go srv.Serve()
		defer srv.Close()
		daemonAddr = lis.Addr().String()
		fmt.Printf("in-process fleet daemon on %s\n", daemonAddr)
	}

	c, err := orwlnet.DialContext(ctx, daemonAddr)
	if err != nil {
		return err
	}
	defer c.Close()
	remote, err := c.PlacementService()
	if err != nil {
		return err
	}
	stats, err := remote.Stats(ctx)
	if err != nil {
		return err
	}
	if len(stats.Machines) == 0 {
		return fmt.Errorf("simulate: daemon at %s serves no fleet machines", daemonAddr)
	}

	reqs := make([]*placement.PlaceRequest, len(stats.Machines))
	for i, m := range stats.Machines {
		reqs[i] = &placement.PlaceRequest{
			Machine:  m,
			Strategy: placement.TreeMatch,
			Matrix:   w.Comm,
			Options:  placement.Options{ControlThreads: true},
		}
	}
	start := time.Now()
	resps, err := remote.PlaceBatch(ctx, reqs)
	if err != nil {
		return err
	}
	rtt := time.Since(start)

	fmt.Printf("workload %q: %d threads batch-placed across %d machines in one RPC (%.2fms round trip)\n\n",
		w.Name, len(w.Threads), len(stats.Machines), float64(rtt.Nanoseconds())/1e6)
	fmt.Printf("%-12s %14s %16s %10s %12s\n", "machine", "cost", "cross-NUMA", "cache", "daemon ms")
	for i, resp := range resps {
		if resp.Err != "" {
			fmt.Printf("%-12s %s\n", stats.Machines[i], resp.Err)
			continue
		}
		hit := "miss"
		if resp.CacheHit {
			hit = "hit"
		}
		fmt.Printf("%-12s %14.3g %16.3g %10s %12.2f\n",
			resp.Machine, resp.Cost, resp.CrossNUMAVolume, hit, float64(resp.ElapsedNS)/1e6)
	}
	return nil
}

func loadWorkload(path string, demo bool) (*perfsim.Workload, error) {
	if demo || path == "" {
		if !demo {
			return nil, fmt.Errorf("simulate: -w workload.json or -demo required")
		}
		return livermore.Profile(16384, 64, 100)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perfsim.ReadJSON(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}
