// Distributed ORWL example: locations and placement served over TCP
// (the distributed face of the ORWL model — the paper evaluates a
// single SMP, but the runtime's resource abstraction is
// network-transparent). A daemon process exports a chain of locations
// plus a placement service for its machine; worker "processes"
// (separate client connections here) first obtain a topology-aware
// mapping for the pipeline from the remote daemon through the public
// orwlplace facade, then run an iterative pipeline over the shared
// locations with exactly the ORWL FIFO discipline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"orwlplace"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/placement"
)

func main() {
	stages := flag.Int("stages", 4, "pipeline stages")
	rounds := flag.Int("rounds", 5, "iterations per stage")
	machine := flag.String("machine", "tinyht", "daemon-side machine for placement")
	flag.Parse()

	// --- Daemon side: the owning process holds the locations, exports
	// them, and serves placement for its machine (what `orwlnetd -place
	// -machine ...` does as a standalone daemon).
	names := make([]string, *stages)
	owner := orwl.MustProgram(1, names[:0]...)
	locs := make(map[string]*orwl.Location, *stages)
	for i := range names {
		names[i] = fmt.Sprintf("stage%d", i)
		loc, err := owner.AddLocation(orwl.Loc(0, names[i]))
		if err != nil {
			log.Fatal(err)
		}
		loc.Scale(8)
		locs[names[i]] = loc
	}
	top, err := orwlplace.Machine(*machine)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := placement.NewEngine(top)
	if err != nil {
		log.Fatal(err)
	}
	daemonSvc, err := placement.NewLocalService(eng)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, locs, orwlnet.WithPlacement(daemonSvc))
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("daemon on %s: %d locations + placement for %s\n",
		lis.Addr(), len(locs), top.Attrs.Name)

	// --- Program side: before running, ask the remote daemon where the
	// pipeline should go. Everything below uses only the public facade:
	// dial, describe the communication pattern, get the assignment.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	remote, err := orwlplace.DialPlacement(ctx, lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	stats, err := remote.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote placement daemon: machine %s, strategies %v\n",
		stats.TopologyName, stats.Strategies)

	// Each stage exchanges one 8-byte record with its neighbour every
	// round: the chain structure is exactly what TreeMatch exploits.
	mat := orwlplace.NewMatrix(*stages)
	for s := 1; s < *stages; s++ {
		mat.AddSym(s-1, s, float64(8**rounds))
	}
	resp, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, *stages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote mapping: strategy %s, cost %.0f, cross-NUMA %.0f bytes, cache hit %v, %.2fms on daemon\n",
		resp.Assignment.Strategy, resp.Cost, resp.CrossNUMAVolume, resp.CacheHit,
		float64(resp.ElapsedNS)/1e6)
	remoteTop, err := remote.Topology(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(orwlplace.RenderAssignment(remoteTop, resp.Assignment, names))

	// A recurring phase is served from the daemon's mapping cache.
	again, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, *stages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second request: cache hit %v (daemon cache: %d hits, %d misses)\n",
		again.CacheHit, again.Cache.Hits, again.Cache.Misses)

	// --- Worker clients: stage s reads stage s-1's location and writes
	// its own, iteratively, each on the PU the remote mapping assigned.
	// Writer-first order is established by queueing the writes in stage
	// order before any reads.
	writerReady := make([]chan struct{}, *stages)
	for i := range writerReady {
		writerReady[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for s := 0; s < *stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := orwlnet.Dial(lis.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			write, err := c.Insert(names[s], orwl.Write)
			if err != nil {
				log.Fatal(err)
			}
			close(writerReady[s])
			var read *orwlnet.RemoteHandle
			if s > 0 {
				<-writerReady[s-1]
				read, err = c.Insert(names[s-1], orwl.Read)
				if err != nil {
					log.Fatal(err)
				}
			}
			for r := 0; r < *rounds; r++ {
				carry := byte(r)
				if s > 0 {
					if err := read.Section(true, func(h *orwlnet.RemoteHandle) error {
						data, err := h.Read()
						if err != nil {
							return err
						}
						carry = data[0]
						return nil
					}); err != nil {
						log.Fatal(err)
					}
				}
				if err := write.Section(true, func(h *orwlnet.RemoteHandle) error {
					return h.Write([]byte{carry + 1})
				}); err != nil {
					log.Fatal(err)
				}
				if s == *stages-1 {
					fmt.Printf("round %d: value %d after %d hops (stage on pu %d)\n",
						r, carry+1, *stages, resp.Assignment.ComputePU[s])
				}
			}
		}(s)
	}
	wg.Wait()
	ins, grants, rels := owner.ControlStats()
	fmt.Printf("server control events: %d inserts, %d grants, %d releases\n", ins, grants, rels)
}
