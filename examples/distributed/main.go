// Distributed ORWL example: locations and placement served over TCP
// (the distributed face of the ORWL model — the paper evaluates a
// single SMP, but the runtime's resource abstraction is
// network-transparent). A daemon process exports a chain of locations
// plus a placement fleet; worker "processes" (separate client
// connections here) first obtain a topology-aware mapping for the
// pipeline from the remote daemon through the public orwlplace
// facade — batch-comparing every fleet machine in one RPC on the way
// — then run an iterative pipeline over the shared locations with
// exactly the ORWL FIFO discipline.
//
// By default the daemon is started in-process, so the example is
// self-contained. With -daemon host:port it runs against an external
// `orwlnetd -place -machine ... -loc stage0:8 -loc stage1:8 ...`
// fleet daemon instead — the end-to-end smoke CI exercises exactly
// that.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"orwlplace"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
)

func main() {
	stages := flag.Int("stages", 4, "pipeline stages")
	rounds := flag.Int("rounds", 5, "iterations per stage")
	machine := flag.String("machine", "tinyht", "daemon-side default machine for placement (in-process daemon only)")
	daemonAddr := flag.String("daemon", "", "address of an external orwlnetd fleet daemon exporting stage0..stageN locations and -place; empty starts one in-process")
	flag.Parse()

	names := make([]string, *stages)
	for i := range names {
		names[i] = fmt.Sprintf("stage%d", i)
	}

	// --- Daemon side (in-process mode): the owning process holds the
	// locations, exports them, and serves a placement fleet (what
	// `orwlnetd -place -machine ... -loc ...` does as a standalone
	// daemon). With -daemon, this whole block is someone else's
	// process.
	var owner *orwl.Program
	addr := *daemonAddr
	if addr == "" {
		owner = orwl.MustProgram(1)
		locs := make(map[string]*orwl.Location, *stages)
		for i := range names {
			loc, err := owner.AddLocation(orwl.Loc(0, names[i]))
			if err != nil {
				log.Fatal(err)
			}
			loc.Scale(8)
			locs[names[i]] = loc
		}
		fleet, err := orwlplace.NewFleet([]string{*machine})
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv, err := orwlnet.NewServer(lis, locs, orwlnet.WithPlacement(fleet))
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve()
		defer srv.Close()
		addr = lis.Addr().String()
		fmt.Printf("daemon on %s: %d locations + placement fleet %v\n",
			addr, len(locs), fleet.Machines())
	} else {
		fmt.Printf("using external daemon at %s\n", addr)
	}

	// --- Program side: before running, ask the remote daemon where the
	// pipeline should go. Everything below uses only the public facade:
	// dial, describe the communication pattern, get the assignment.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	remote, err := orwlplace.DialPlacement(ctx, addr)
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	stats, err := remote.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote placement daemon: fleet %v (default %s), strategies %v\n",
		stats.Machines, stats.TopologyName, stats.Strategies)

	// Each stage exchanges one 8-byte record with its neighbour every
	// round: the chain structure is exactly what TreeMatch exploits.
	mat := orwlplace.NewMatrix(*stages)
	for s := 1; s < *stages; s++ {
		mat.AddSym(s-1, s, float64(8**rounds))
	}

	// Cross-machine comparison, one RPC: where would this pipeline land
	// on every machine the daemon serves?
	across, err := orwlplace.PlaceAcross(ctx, remote, orwlplace.TreeMatch, mat, *stages, stats.Machines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet comparison (%d machines, one PlaceBatch RPC):\n", len(across))
	for i, resp := range across {
		if resp.Err != "" {
			fmt.Printf("  %-10s %s\n", stats.Machines[i], resp.Err)
			continue
		}
		fmt.Printf("  %-10s cost %8.0f, cross-NUMA %8.0f bytes, pus %v\n",
			resp.Machine, resp.Cost, resp.CrossNUMAVolume, resp.Assignment.ComputePU)
	}

	// The pipeline itself runs under the default machine's mapping.
	resp, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, *stages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote mapping on %s: strategy %s, cost %.0f, cache hit %v, %.2fms on daemon\n",
		resp.Machine, resp.Assignment.Strategy, resp.Cost, resp.CacheHit,
		float64(resp.ElapsedNS)/1e6)
	remoteTop, err := remote.Topology(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(orwlplace.RenderAssignment(remoteTop, resp.Assignment, names))

	// A recurring phase is served from the daemon's mapping cache (the
	// batch above already warmed this key on the default machine).
	again, err := orwlplace.PlaceOn(ctx, remote, orwlplace.TreeMatch, mat, *stages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second request: cache hit %v (daemon cache: %d hits, %d misses)\n",
		again.CacheHit, again.Cache.Hits, again.Cache.Misses)

	// --- Worker clients: stage s reads stage s-1's location and writes
	// its own, iteratively, each on the PU the remote mapping assigned.
	// Writer-first order is established by queueing the writes in stage
	// order before any reads.
	writerReady := make([]chan struct{}, *stages)
	for i := range writerReady {
		writerReady[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for s := 0; s < *stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := orwlnet.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			// Against an external daemon the locations exist with
			// whatever size its -loc flags said; make sure ours fit.
			if err := c.Scale(names[s], 8); err != nil {
				log.Fatal(err)
			}
			write, err := c.Insert(names[s], orwl.Write)
			if err != nil {
				log.Fatal(err)
			}
			close(writerReady[s])
			var read *orwlnet.RemoteHandle
			if s > 0 {
				<-writerReady[s-1]
				read, err = c.Insert(names[s-1], orwl.Read)
				if err != nil {
					log.Fatal(err)
				}
			}
			for r := 0; r < *rounds; r++ {
				carry := byte(r)
				if s > 0 {
					if err := read.Section(true, func(h *orwlnet.RemoteHandle) error {
						data, err := h.Read()
						if err != nil {
							return err
						}
						carry = data[0]
						return nil
					}); err != nil {
						log.Fatal(err)
					}
				}
				if err := write.Section(true, func(h *orwlnet.RemoteHandle) error {
					return h.Write([]byte{carry + 1})
				}); err != nil {
					log.Fatal(err)
				}
				if s == *stages-1 {
					fmt.Printf("round %d: value %d after %d hops (stage on pu %d)\n",
						r, carry+1, *stages, resp.Assignment.ComputePU[s])
				}
			}
		}(s)
	}
	wg.Wait()
	if owner != nil {
		ins, grants, rels := owner.ControlStats()
		fmt.Printf("server control events: %d inserts, %d grants, %d releases\n", ins, grants, rels)
	}
}
