// Distributed ORWL example: locations served over TCP (the distributed
// face of the ORWL model — the paper evaluates a single SMP, but the
// runtime's resource abstraction is network-transparent). A server
// process exports a chain of locations; worker "processes" (separate
// client connections here) run an iterative pipeline over them with
// exactly the ORWL FIFO discipline.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"

	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
)

func main() {
	stages := flag.Int("stages", 4, "pipeline stages")
	rounds := flag.Int("rounds", 5, "iterations per stage")
	flag.Parse()

	// The owning process: it holds the locations and exports them.
	names := make([]string, *stages)
	owner := orwl.MustProgram(1, names[:0]...)
	locs := make(map[string]*orwl.Location, *stages)
	for i := range names {
		names[i] = fmt.Sprintf("stage%d", i)
		loc, err := owner.AddLocation(orwl.Loc(0, names[i]))
		if err != nil {
			log.Fatal(err)
		}
		loc.Scale(8)
		locs[names[i]] = loc
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, locs)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("location server on %s exporting %d locations\n", lis.Addr(), len(locs))

	// Worker clients: stage s reads stage s-1's location and writes its
	// own, iteratively. Writer-first order is established by queueing
	// the writes in stage order before any reads.
	writerReady := make([]chan struct{}, *stages)
	for i := range writerReady {
		writerReady[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for s := 0; s < *stages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := orwlnet.Dial(lis.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			write, err := c.Insert(names[s], orwl.Write)
			if err != nil {
				log.Fatal(err)
			}
			close(writerReady[s])
			var read *orwlnet.RemoteHandle
			if s > 0 {
				<-writerReady[s-1]
				read, err = c.Insert(names[s-1], orwl.Read)
				if err != nil {
					log.Fatal(err)
				}
			}
			for r := 0; r < *rounds; r++ {
				carry := byte(r)
				if s > 0 {
					if err := read.Section(true, func(h *orwlnet.RemoteHandle) error {
						data, err := h.Read()
						if err != nil {
							return err
						}
						carry = data[0]
						return nil
					}); err != nil {
						log.Fatal(err)
					}
				}
				if err := write.Section(true, func(h *orwlnet.RemoteHandle) error {
					return h.Write([]byte{carry + 1})
				}); err != nil {
					log.Fatal(err)
				}
				if s == *stages-1 {
					fmt.Printf("round %d: value %d after %d hops\n", r, carry+1, *stages)
				}
			}
		}(s)
	}
	wg.Wait()
	ins, grants, rels := owner.ControlStats()
	fmt.Printf("server control events: %d inserts, %d grants, %d releases\n", ins, grants, rels)
}
