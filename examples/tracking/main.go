// Video tracking example: the full 30-task DFG of the paper's Fig. 3
// (producer, GMM split 16 ways, erode, a chain of dilates, CCL split 4
// ways, tracking, consumer) running on synthetic video, verified
// against the serial pipeline, with the affinity module's matrix
// (Fig. 1) and mapping (Fig. 2) rendered, then the Fig. 6 throughput
// comparison on the simulated SMP12E5.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/core"
	"orwlplace/internal/experiments"
	"orwlplace/internal/topology"
)

func main() {
	frames := flag.Int("frames", 24, "frames to process")
	width := flag.Int("w", 320, "frame width")
	height := flag.Int("h", 180, "frame height")
	flag.Parse()

	cfg := tracking.PaperConfig(tracking.Size{W: *width, H: *height})
	fmt.Printf("pipeline: %d tasks (%d GMM splits, %d CCL splits, %d dilates)\n",
		cfg.NumTasks(), cfg.GMMSplits, cfg.CCLSplits, cfg.Dilates)

	t0 := time.Now()
	want, err := tracking.RunSerial(cfg, *frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial:   %v\n", time.Since(t0))

	t0 = time.Now()
	got, res, err := tracking.RunORWL(cfg, *frames, topology.Fig2Machine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORWL DFG: %v\n", time.Since(t0))

	if !tracking.TracksEqual(want, got) {
		log.Fatal("ORWL DFG diverged from the serial pipeline")
	}
	last := got[len(got)-1]
	fmt.Printf("frame %d tracks:", *frames-1)
	for _, tr := range last {
		fmt.Printf("  #%d(%.0f,%.0f)", tr.ID, tr.CX, tr.CY)
	}
	fmt.Println()

	fmt.Println("\ncommunication matrix (paper Fig. 1):")
	fmt.Print(res.Module.Matrix().RenderGrayScale())
	fmt.Println("\ntask allocation (paper Fig. 2):")
	fmt.Print(core.RenderMapping(res.Module.Mapping(), cfg.TaskNames()))

	fmt.Println("\npaper-scale throughput on the simulated SMP12E5 (Fig. 6):")
	fig, err := experiments.Fig6(topology.SMP12E5())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())
}
