// Livermore Kernel 23 example: runs the 2-D implicit hydrodynamics
// stencil serially, with the OpenMP-style fork-join wavefront, and as
// the pipelined ORWL block decomposition with the automatic affinity
// module — verifying that all three produce bitwise identical results
// — then reproduces the paper's Fig. 4 comparison on the simulated
// SMP12E5 machine.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"orwlplace/internal/apps/livermore"
	"orwlplace/internal/core"
	"orwlplace/internal/experiments"
	"orwlplace/internal/topology"
)

func main() {
	size := flag.Int("size", 514, "grid edge (includes boundary)")
	loops := flag.Int("loops", 20, "number of sweeps")
	gx := flag.Int("gx", 4, "block grid columns")
	gy := flag.Int("gy", 2, "block grid rows")
	flag.Parse()

	ref, err := livermore.NewGrid(*size, *size, 2017)
	if err != nil {
		log.Fatal(err)
	}
	forkJoin := ref.Clone()
	orwlGrid := ref.Clone()

	t0 := time.Now()
	ref.Serial(*loops)
	fmt.Printf("serial:    %v\n", time.Since(t0))

	t0 = time.Now()
	if err := livermore.RunForkJoin(forkJoin, *gx, *gy, *loops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fork-join: %v\n", time.Since(t0))

	t0 = time.Now()
	res, err := livermore.RunORWL(orwlGrid, *gx, *gy, *loops, topology.Fig2Machine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORWL:      %v (%d tasks)\n", time.Since(t0), res.Program.NumTasks())

	for name, g := range map[string]*livermore.Grid{"fork-join": forkJoin, "ORWL": orwlGrid} {
		d, err := livermore.MaxAbsDiff(ref, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max |serial - %s| = %g\n", name, d)
		if d != 0 {
			log.Fatalf("%s diverged from the serial kernel", name)
		}
	}

	fmt.Println("\ntask placement chosen by the affinity module:")
	fmt.Print(core.RenderMapping(res.Module.Mapping(), nil))

	fmt.Println("\npaper-scale comparison on the simulated SMP12E5 (Fig. 4):")
	fig, err := experiments.Fig4(topology.SMP12E5())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())
}
