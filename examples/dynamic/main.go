// Dynamic affinity example: the paper's advanced API (§IV-B). The
// fully automatic mode computes the mapping once, at the schedule
// barrier; applications whose communication pattern changes at run
// time instead call the three-step API — orwl_dependency_get,
// orwl_affinity_compute, orwl_affinity_set — whenever the task/location
// connections change.
//
// Here a two-phase computation first runs as a pipeline, then as two
// dense clusters. The example recomputes the mapping between the
// phases and shows how the binding follows the new communication
// matrix.
package main

import (
	"fmt"
	"log"

	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

const tasks = 8

// runPhase executes one program phase and returns its module with the
// affinity computed through the advanced API.
func runPhase(top *topology.Topology, wire func(ctx *orwl.TaskContext) error) (*core.Module, error) {
	prog, err := orwl.NewProgram(tasks, "data")
	if err != nil {
		return nil, err
	}
	mod, err := core.Attach(prog, top)
	if err != nil {
		return nil, err
	}
	if err := prog.Run(wire); err != nil {
		return nil, err
	}
	// The advanced three-step API, exactly as the paper names it.
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		return nil, err
	}
	if err := mod.AffinitySet(); err != nil {
		return nil, err
	}
	return mod, nil
}

func main() {
	top := topology.Fig2Machine()

	// Phase 1: a pipeline — each task reads its predecessor.
	pipeline, err := runPhase(top, func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("data", 1<<16); err != nil {
			return err
		}
		h := orwl.NewHandle()
		if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "data"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "data"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: the task graph changed — two dense clusters of four.
	clusters, err := runPhase(top, func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("data", 1<<16); err != nil {
			return err
		}
		h := orwl.NewHandle()
		if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "data"), ctx.TID()); err != nil {
			return err
		}
		base := ctx.TID() / 4 * 4
		for peer := base; peer < base+4; peer++ {
			if peer == ctx.TID() {
				continue
			}
			r := orwl.NewHandle()
			if err := ctx.ReadInsert(r, orwl.Loc(peer, "data"), ctx.TID()); err != nil {
				return err
			}
		}
		return ctx.Schedule()
	})
	if err != nil {
		log.Fatal(err)
	}

	for name, mod := range map[string]*core.Module{"pipeline": pipeline, "clusters": clusters} {
		fmt.Printf("=== phase: %s ===\n", name)
		fmt.Print(mod.Matrix().RenderGrayScale())
		cost, err := treematch.Cost(top, mod.Matrix(), mod.Mapping().ComputePU)
		if err != nil {
			log.Fatal(err)
		}
		scatter, _ := treematch.Place(top, tasks, treematch.StrategyScatter)
		scCost, _ := treematch.Cost(top, mod.Matrix(), scatter)
		fmt.Printf("treematch cost %.0f vs scatter %.0f\n", cost, scCost)
		fmt.Print(core.RenderMapping(mod.Mapping(), nil))
		fmt.Println()
	}
}
