// Dynamic affinity example: closing the placement loop (the paper's
// advanced API, §IV-B, grown into a feedback loop).
//
// The paper computes a mapping once, at the schedule barrier, from the
// *declared* handle graph. This example runs a program whose actual
// traffic drifts away from that declaration mid-run: phase 1 exercises
// the declared pipeline, then the tasks switch to a clustered exchange
// the initial mapping is wrong for. The runtime's traffic counters see
// the shift; an adaptive reconciler measures the drift of each
// observed window, re-places through the strategy registry, and adopts
// the new mapping because the perfsim-modeled gain beats the modeled
// migration cost — recovering most of the performance the static
// mapping loses.
package main

import (
	"fmt"
	"log"
	"time"

	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
)

const (
	tasks    = 16 // spans two sockets of the Fig. 2 machine
	locSize  = 1 << 16
	phaseLen = 20 // critical sections per task per phase
)

// wire declares the pipeline dependencies — the only thing the
// schedule barrier (and hence the paper's one-shot placement) ever
// sees. The "clus" locations exist but declare no cross-task handles:
// phase 2 reaches them through steady-state requests invisible to the
// declared graph.
func wire(ctx *orwl.TaskContext, w, r *orwl.Handle) error {
	if err := ctx.Scale("pipe", locSize); err != nil {
		return err
	}
	if err := ctx.Scale("clus", locSize); err != nil {
		return err
	}
	if err := ctx.WriteInsert(w, orwl.Loc(ctx.TID(), "pipe"), 0); err != nil {
		return err
	}
	if ctx.TID() > 0 {
		if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "pipe"), 1); err != nil {
			return err
		}
	}
	return ctx.Schedule()
}

// runPipelinePhase drives the declared pattern: each task writes its
// own pipe location and reads its predecessor's, phaseLen times.
func runPipelinePhase(ctx *orwl.TaskContext, w, r *orwl.Handle) error {
	for i := 0; i < phaseLen; i++ {
		if err := w.Section(func([]byte) error { return nil }); err != nil {
			return err
		}
		if r != nil {
			if err := r.Section(func([]byte) error { return nil }); err != nil {
				return err
			}
		}
	}
	return nil
}

// runClusterPhase drives the shifted pattern through steady-state
// requests: the even tasks and the odd tasks become two dense cliques
// — the stride-2 pairing whose members a pipeline-computed mapping
// scattered across both sockets.
func runClusterPhase(ctx *orwl.TaskContext) error {
	for i := 0; i < phaseLen; i++ {
		w, err := ctx.Request(orwl.Loc(ctx.TID(), "clus"), orwl.Write)
		if err != nil {
			return err
		}
		w.Await()
		if err := w.Release(); err != nil {
			return err
		}
		for peer := (ctx.TID() + 2) % tasks; peer != ctx.TID(); peer = (peer + 2) % tasks {
			r, err := ctx.Request(orwl.Loc(peer, "clus"), orwl.Read)
			if err != nil {
				return err
			}
			r.Await()
			if err := r.Release(); err != nil {
				return err
			}
		}
	}
	return nil
}

// modelSeconds costs a mapping under the workload's communication
// pattern with the performance simulator.
func modelSeconds(top *topology.Topology, a *placement.Assignment, w *perfsim.Workload) float64 {
	res, err := perfsim.Simulate(top, w, &perfsim.Placement{
		ComputePU:  a.ComputePU,
		ControlPU:  a.ControlPU,
		LocalAlloc: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Seconds
}

func main() {
	top := topology.Fig2Machine()
	eng, err := placement.NewEngine(top)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := orwl.NewProgram(tasks, "pipe", "clus")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's automatic mode: the schedule hook places from the
	// declared (pipeline) matrix.
	mod, _, err := core.EnableAutomatic(prog, top, true, core.WithEngine(eng))
	if err != nil {
		log.Fatal(err)
	}

	// The feedback loop: an adaptive reconciler fed by the program's
	// windowed observed traffic.
	rec, err := placement.NewReconciler(eng, placement.ObservedWindow(prog), prog, placement.AdaptiveConfig{
		Horizon:          200,
		WindowIterations: phaseLen, // each window spans one phase
	})
	if err != nil {
		log.Fatal(err)
	}

	phase2 := make(chan struct{})
	done := make(chan struct{})
	reports := make(chan string, 8)

	go func() {
		defer close(done)
		err := prog.Run(func(ctx *orwl.TaskContext) error {
			w, r := orwl.NewHandle2(), orwl.NewHandle2()
			if ctx.TID() == 0 {
				r = nil
			}
			if err := wire(ctx, w, r); err != nil {
				return err
			}
			if err := runPipelinePhase(ctx, w, r); err != nil {
				return err
			}
			<-phase2 // barrier: the reconciler samples between phases
			return runClusterPhase(ctx)
		})
		if err != nil {
			log.Fatal(err)
		}
	}()

	// Epoch 1: the pipeline phase has run (the (tasks-1)*phaseLen read
	// releases have all been recorded); the observed window matches
	// the declared matrix, so the loop keeps the mapping.
	waitForTraffic(prog, (tasks-1)*phaseLen)
	if err := rec.SetCurrent(mod.Assignment(), mod.Matrix()); err != nil {
		log.Fatal(err)
	}
	rep1, err := rec.Epoch()
	if err != nil {
		log.Fatal(err)
	}
	reports <- fmt.Sprintf("epoch 1 (pipeline running): drift %.2f, remapped=%v — observed traffic matches the declared graph", rep1.Drift, rep1.Adopted)
	staticAsgn := rep1.Assignment

	// Phase 2: the pattern shifts under the static mapping.
	close(phase2)
	<-done

	// Epoch 2: the observed window now holds the clustered exchange.
	rep2, err := rec.Epoch()
	if err != nil {
		log.Fatal(err)
	}
	reports <- fmt.Sprintf("epoch 2 (after the shift): drift %.2f, remapped=%v (modeled gain %.4fs vs migration cost %.4fs)",
		rep2.Drift, rep2.Adopted, rep2.GainSeconds, rep2.CostSeconds)
	close(reports)

	fmt.Println("=== closed-loop placement on a shifting program ===")
	fmt.Println()
	fmt.Println("declared matrix (the schedule barrier's view):")
	fmt.Print(mod.Matrix().RenderGrayScale())
	fmt.Println()
	fmt.Println("observed matrix (what actually flowed):")
	fmt.Print(prog.ObservedMatrix().RenderGrayScale())
	fmt.Println()
	for line := range reports {
		fmt.Println(line)
	}
	if !rep2.Adopted {
		log.Fatal("the loop failed to re-place after the shift")
	}

	// Quantify the recovery under the shifted pattern.
	clusterComm := prog.ObservedMatrix() // dominated by phase 2 volume
	w := &perfsim.Workload{
		Name:       "dynamic-shift",
		Threads:    make([]perfsim.Thread, tasks),
		Comm:       clusterComm,
		Iterations: 200,
	}
	for i := range w.Threads {
		w.Threads[i] = perfsim.Thread{ComputeCycles: 1e5, WorkingSet: 1 << 20, MemoryTraffic: 1 << 14}
	}
	staticSec := modelSeconds(top, staticAsgn, w)
	adaptiveSec := modelSeconds(top, rep2.Assignment, w)
	fmt.Println()
	fmt.Printf("modeled seconds under the shifted pattern (200 iterations):\n")
	fmt.Printf("  static schedule-barrier mapping: %.4f\n", staticSec)
	fmt.Printf("  re-placed mapping:               %.4f  (%.2fx)\n", adaptiveSec, staticSec/adaptiveSec)

	st := rec.Stats()
	fmt.Printf("\nloop counters: %d epochs, %d drift alarms, %d remaps, %d rejected\n",
		st.Epochs, st.DriftEpochs, st.Remaps, st.Rejected)
	fmt.Println("\nthe bindings followed the traffic: same program, no re-declaration, no restart")
}

// waitForTraffic blocks until the program's counters have seen at
// least ops transfer operations.
func waitForTraffic(prog *orwl.Program, ops int) {
	for {
		if _, o := prog.Traffic().Totals(); o >= uint64(ops) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
