// Dynamic affinity example: the paper's advanced API (§IV-B). The
// fully automatic mode computes the mapping once, at the schedule
// barrier; applications whose communication pattern changes at run
// time instead call the three-step API — orwl_dependency_get,
// orwl_affinity_compute, orwl_affinity_set — whenever the task/location
// connections change.
//
// Here a two-phase computation first runs as a pipeline, then as two
// dense clusters. The example recomputes the mapping between the
// phases and shows how the binding follows the new communication
// matrix. Both phases share one placement engine: when the program
// oscillates back to a pattern the engine has already mapped, the
// assignment comes from the mapping cache instead of a fresh
// TreeMatch run.
package main

import (
	"fmt"
	"log"

	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/placement"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

const tasks = 8

// runPhase executes one program phase and returns its module with the
// affinity computed through the advanced API. All phases place through
// the shared engine, so recurring matrices hit its cache.
func runPhase(eng *placement.Engine, wire func(ctx *orwl.TaskContext) error) (*core.Module, error) {
	prog, err := orwl.NewProgram(tasks, "data")
	if err != nil {
		return nil, err
	}
	mod, err := core.Attach(prog, eng.Topology(), core.WithEngine(eng))
	if err != nil {
		return nil, err
	}
	if err := prog.Run(wire); err != nil {
		return nil, err
	}
	// The advanced three-step API, exactly as the paper names it.
	mod.DependencyGet()
	if err := mod.AffinityCompute(); err != nil {
		return nil, err
	}
	if err := mod.AffinitySet(); err != nil {
		return nil, err
	}
	return mod, nil
}

// wirePipeline connects each task to its predecessor.
func wirePipeline(ctx *orwl.TaskContext) error {
	if err := ctx.Scale("data", 1<<16); err != nil {
		return err
	}
	h := orwl.NewHandle()
	if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "data"), ctx.TID()); err != nil {
		return err
	}
	if ctx.TID() > 0 {
		r := orwl.NewHandle()
		if err := ctx.ReadInsert(r, orwl.Loc(ctx.TID()-1, "data"), ctx.TID()); err != nil {
			return err
		}
	}
	return ctx.Schedule()
}

// wireClusters connects each task to the other three of its cluster of
// four.
func wireClusters(ctx *orwl.TaskContext) error {
	if err := ctx.Scale("data", 1<<16); err != nil {
		return err
	}
	h := orwl.NewHandle()
	if err := ctx.WriteInsert(h, orwl.Loc(ctx.TID(), "data"), ctx.TID()); err != nil {
		return err
	}
	base := ctx.TID() / 4 * 4
	for peer := base; peer < base+4; peer++ {
		if peer == ctx.TID() {
			continue
		}
		r := orwl.NewHandle()
		if err := ctx.ReadInsert(r, orwl.Loc(peer, "data"), ctx.TID()); err != nil {
			return err
		}
	}
	return ctx.Schedule()
}

func main() {
	top := topology.Fig2Machine()
	eng, err := placement.NewEngine(top)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: a pipeline. Phase 2: the task graph changed — two dense
	// clusters of four. Then the program oscillates back and forth;
	// from the third phase on, every mapping is a cache hit.
	phases := []struct {
		name string
		wire func(ctx *orwl.TaskContext) error
	}{
		{"pipeline", wirePipeline},
		{"clusters", wireClusters},
		{"pipeline (again)", wirePipeline},
		{"clusters (again)", wireClusters},
	}
	mods := map[string]*core.Module{}
	for _, ph := range phases {
		mod, err := runPhase(eng, ph.wire)
		if err != nil {
			log.Fatal(err)
		}
		mods[ph.name] = mod
	}

	for _, name := range []string{"pipeline", "clusters"} {
		mod := mods[name]
		fmt.Printf("=== phase: %s ===\n", name)
		fmt.Print(mod.Matrix().RenderGrayScale())
		cost, err := treematch.Cost(top, mod.Matrix(), mod.Mapping().ComputePU)
		if err != nil {
			log.Fatal(err)
		}
		scatter, err := eng.Compute("scatter", nil, tasks, placement.Options{})
		if err != nil {
			log.Fatal(err)
		}
		scCost, _ := treematch.Cost(top, mod.Matrix(), scatter.ComputePU)
		fmt.Printf("treematch cost %.0f vs scatter %.0f\n", cost, scCost)
		fmt.Print(core.RenderMapping(mod.Mapping(), nil))
		fmt.Println()
	}

	st := eng.Stats()
	fmt.Printf("mapping cache: %d hits, %d misses, %d entries — the repeated phases were served from the cache\n",
		st.Hits, st.Misses, st.Entries)
}
