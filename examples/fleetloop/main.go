// Fleet adaptive loop example: the client half of the daemon-hosted
// control plane (run against `orwlnetd -place -adaptive`).
//
// Where examples/dynamic closes the placement loop inside one process
// (its own reconciler re-binding its own tasks), this process leases a
// task range from a central daemon, streams its observed traffic up,
// and obeys the remaps the daemon's controller pushes down. Several
// copies with disjoint -base ranges form one machine-wide workload:
// the daemon merges their windows into a single matrix, reconciles it,
// and every copy receives the same epoch-stamped assignment — fleet
// coordination no single process could compute from its own slice.
//
// The traffic is synthetic and shifts mid-run: a ring for the first
// -shift of the run, then a reversed pairing the initial mapping is
// wrong for. Watch the daemon adopt a remap and every client apply it
// without restarting:
//
//	orwlnetd -place -adaptive -machine smp12e5 &
//	fleetloop -peer a -base 0 -tasks 8 &
//	fleetloop -peer b -base 8 -tasks 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orwlplace"
	"orwlplace/internal/orwl"
)

func main() {
	daemon := flag.String("daemon", "127.0.0.1:7117", "address of the placement daemon (orwlnetd -place -adaptive)")
	peer := flag.String("peer", "", "peer identity in the daemon's lease table (default pid-derived)")
	base := flag.Int("base", 0, "this process's offset in the machine-global task space")
	tasks := flag.Int("tasks", 8, "tasks this process contributes")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	shift := flag.Duration("shift", 3*time.Second, "when the traffic pattern shifts from ring to pairs")
	shiftSpan := flag.Float64("shift-span", 1.0, "fraction of this process's tasks the shift touches (the rest keep ringing; small spans make remaps delta-friendly)")
	interval := flag.Duration("interval", 250*time.Millisecond, "observed-window report cadence")
	flag.Parse()
	if *shiftSpan <= 0 || *shiftSpan > 1 {
		log.Fatalf("fleetloop: -shift-span %v outside (0,1]", *shiftSpan)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	sigCtx, sigStop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer sigStop()

	if err := run(sigCtx, *daemon, *peer, *base, *tasks, *shift, *shiftSpan, *interval); err != nil {
		log.Fatalf("fleetloop: %v", err)
	}
}

func run(ctx context.Context, daemon, peer string, base, tasks int, shift time.Duration, shiftSpan float64, interval time.Duration) error {
	prog := orwl.MustProgram(tasks)

	// Retries armed: transient daemon outages (a restart, a dropped
	// connection) are ridden out with exponential backoff instead of
	// killing the loop.
	remote, err := orwlplace.DialPlacement(ctx, daemon, orwlplace.WithRetry(orwlplace.DefaultRetryPolicy()))
	if err != nil {
		return err
	}
	defer remote.Close()

	fa, err := orwlplace.NewFleetAdaptive(ctx, remote, prog, orwlplace.FleetAdaptiveConfig{
		Peer:     peer,
		TaskBase: base,
		Interval: interval,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fleetloop[%s]: leased fleet tasks [%d,%d) as lease %d\n", peer, base, base+tasks, fa.LeaseID())

	// Synthetic traffic: tasks talk in a ring until the shift, then in
	// reversed pairs — a pattern the ring mapping is wrong for, so the
	// daemon's drift measure fires and a remap comes back.
	go generate(ctx, prog, base, tasks, shift, shiftSpan)

	err = fa.Run(ctx, func(ev orwlplace.Remap) {
		fmt.Printf("fleetloop[%s]: applied remap machine=%s epoch=%d drift=%.3f\n", peer, ev.Machine, ev.Epoch, ev.Drift)
	})
	st := fa.Stats()
	fmt.Printf("fleetloop[%s]: done: reports=%d remaps-applied=%d last-epoch=%d dropped-windows=%d re-leases=%d delta-remaps=%d tasks-rebound=%d\n",
		peer, st.Reports, st.Remaps, st.AppliedEpoch, st.DroppedWindows, st.Releases, st.DeltaRemaps, st.TasksRebound)
	if err != nil && ctx.Err() == nil {
		return err
	}
	// A run that never applied a remap means the loop did not close.
	if st.Remaps == 0 {
		fmt.Fprintf(os.Stderr, "fleetloop[%s]: warning: no remap applied\n", peer)
	}
	return nil
}

// generate records the shifting pattern into the program's traffic
// counters. Local task i is fleet task base+i; the patterns are
// expressed in local indices (each process generates only its own
// slice of the machine-wide pattern).
//
// Before the shift every task rings. After it, only the first
// span=tasks*shiftSpan tasks flip to the reversed pairing; the rest
// keep ringing. A small span changes few placements, which is exactly
// what the schema v6 delta push is for — the daemon ships the handful
// of moved tasks instead of the whole assignment.
func generate(ctx context.Context, prog *orwlplace.Program, base, tasks int, shift time.Duration, shiftSpan float64) {
	start := time.Now()
	span := int(float64(tasks) * shiftSpan)
	if span < 2 {
		span = 2 // a pairing needs at least one pair
	}
	if span > tasks {
		span = tasks
	}
	tr := prog.Traffic()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if time.Since(start) < shift {
			for i := 0; i < tasks; i++ {
				tr.Record(i, (i+1)%tasks, 4096)
			}
		} else {
			for i := 0; i < span/2; i++ {
				tr.Record(i, span-1-i, 8192)
			}
			for i := span; i < tasks; i++ {
				tr.Record(i, span+(i+1-span)%(tasks-span), 4096)
			}
		}
	}
}
