// Quickstart: the paper's Listing 1 — a pipeline of ORWL tasks where
// every task writes its own location and reads its predecessor's —
// with the automatic affinity module enabled, exactly as a user would:
// no placement code, just ORWL_AFFINITY=1 (forced here so the example
// is self-contained).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"orwlplace/internal/core"
	"orwlplace/internal/orwl"
	"orwlplace/internal/topology"
)

func main() {
	const tasks = 8

	// ORWL_LOCATIONS_PER_TASK(main_loc) + orwl_init.
	prog, err := orwl.NewProgram(tasks, "main_loc")
	if err != nil {
		log.Fatal(err)
	}

	// The affinity add-on: one call, no change to the task code below.
	top := topology.Fig2Machine()
	mod, _, err := core.EnableAutomatic(prog, top, true)
	if err != nil {
		log.Fatal(err)
	}

	vals := make([]float64, tasks)
	err = prog.Run(func(ctx *orwl.TaskContext) error {
		// Scale our own location to hold one double.
		if err := ctx.Scale("main_loc", 8); err != nil {
			return err
		}
		// Have our own location writable; link "there" to the
		// predecessor.
		here := orwl.NewHandle()
		there := orwl.NewHandle()
		if err := ctx.WriteInsert(here, orwl.Loc(ctx.TID(), "main_loc"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			if err := ctx.ReadInsert(there, orwl.Loc(ctx.TID()-1, "main_loc"), ctx.TID()); err != nil {
				return err
			}
		}
		// Synchronise and coordinate the requests of all tasks. The
		// affinity module computes and sets the thread mapping here.
		if err := ctx.Schedule(); err != nil {
			return err
		}
		// Critical section on our own location.
		return here.Section(func(wbuf []byte) error {
			val := float64(ctx.TID())
			if ctx.TID() > 0 {
				// Block until the predecessor's data is available.
				if err := there.Section(func(rbuf []byte) error {
					prev := math.Float64frombits(binary.LittleEndian.Uint64(rbuf))
					val = (prev + val) * 0.5
					return nil
				}); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint64(wbuf, math.Float64bits(val))
			vals[ctx.TID()] = val
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline values:")
	for t, v := range vals {
		fmt.Printf("  task %d: %.6f\n", t, v)
	}
	fmt.Println()
	fmt.Println("communication matrix extracted by the runtime:")
	fmt.Print(mod.Matrix().RenderGrayScale())
	fmt.Println()
	fmt.Print(core.RenderMapping(mod.Mapping(), nil))
}
