// Matrix multiplication example: the block-cyclic ORWL implementation
// circulating B blocks between tasks, checked against the serial
// blocked kernel and the MKL-style fork-join baseline, followed by the
// paper's Fig. 5 comparison on the simulated SMP20E7 machine.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"orwlplace/internal/apps/matmul"
	"orwlplace/internal/experiments"
	"orwlplace/internal/topology"
)

func main() {
	n := flag.Int("n", 512, "matrix size")
	p := flag.Int("p", 8, "ORWL task count")
	flag.Parse()

	a, err := matmul.NewRandomMatrix(*n, 1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := matmul.NewRandomMatrix(*n, 2)
	if err != nil {
		log.Fatal(err)
	}

	want, _ := matmul.NewMatrix(*n)
	t0 := time.Now()
	if err := matmul.Serial(a, b, want); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial dgemm:      %v\n", time.Since(t0))

	fj, _ := matmul.NewMatrix(*n)
	t0 = time.Now()
	if err := matmul.RunForkJoin(a, b, fj, *p); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fork-join (MKL):   %v\n", time.Since(t0))

	got, _ := matmul.NewMatrix(*n)
	t0 = time.Now()
	res, err := matmul.RunORWL(a, b, got, *p, topology.Fig2Machine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORWL block-cyclic: %v (%d tasks)\n", time.Since(t0), *p)

	for name, m := range map[string]*matmul.Matrix{"fork-join": fj, "ORWL": got} {
		d, err := matmul.MaxAbsDiff(want, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max |serial - %s| = %g\n", name, d)
		if d > 1e-9 {
			log.Fatalf("%s diverged", name)
		}
	}

	fmt.Println("\ndependency ring extracted by the runtime:")
	fmt.Print(res.Module.Matrix().RenderGrayScale())

	fmt.Println("\npaper-scale comparison on the simulated SMP20E7 (Fig. 5):")
	fig, err := experiments.Fig5(topology.SMP20E7())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig.Render())
}
