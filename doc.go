// Package orwlplace reproduces "Automatic, Abstracted and Portable
// Topology-Aware Thread Placement" (Gustedt, Jeannot, Mansouri; IEEE
// CLUSTER 2017) and grows it into placement-as-a-service.
//
// This root package is the public facade — the curated surface
// external consumers import instead of internal/:
//
//   - Service, PlaceRequest, PlaceResponse: the context-aware,
//     transport-agnostic placement contract (strategy + matrix +
//     optional machine selector in, assignment + serving machine +
//     cost/cache/latency diagnostics out), including PlaceBatch for
//     fanning a request slice across a fleet in one call.
//   - NewService: the in-process deployment, a placement engine
//     (strategy registry + LRU mapping cache) behind the interface.
//   - NewFleet: the multi-machine deployment, one engine per named
//     machine behind the same interface, with a default machine and
//     PlaceAcross for one-RPC cross-machine comparisons.
//   - DialPlacement: the remote deployment, a stub speaking the
//     versioned orwlnetd wire protocol to a placement daemon.
//   - Strategies, Machines, Machine, HostTopology: the strategy
//     registry and topology discovery.
//
// The layering below the facade: internal/core keeps the paper-named
// affinity module (ORWL_AFFINITY gating and the three-step
// DependencyGet / AffinityCompute / AffinitySet API) as a thin shim
// over Service — extraction and binding are local, the compute step
// goes wherever the service lives. internal/placement owns the engine
// (pipeline, registry, cache) and the Service contract.
// internal/orwlnet carries both ORWL location sharing and the
// placement RPCs over one multiplexed, length-prefixed,
// version-negotiated TCP protocol, served by cmd/orwlnetd. The
// substrates — internal/topology, internal/treematch, internal/orwl,
// internal/perfsim, internal/comm — are unchanged in role; the
// benchmark harness in this package regenerates every table and
// figure of the paper's evaluation. See DESIGN.md (including the
// PROTOCOL section) and EXPERIMENTS.md.
package orwlplace
