// Package orwlplace reproduces "Automatic, Abstracted and Portable
// Topology-Aware Thread Placement" (Gustedt, Jeannot, Mansouri; IEEE
// CLUSTER 2017).
//
// The module is organised as a set of substrates under internal/ —
// a hardware-topology library (internal/topology), a TreeMatch mapping
// algorithm (internal/treematch), the ORWL ordered read-write-lock
// runtime (internal/orwl) and a NUMA performance simulator
// (internal/perfsim) — unified by the placement engine
// (internal/placement), which owns the pipeline of matrix extraction,
// strategy dispatch (a registry where TreeMatch and the oblivious
// baselines are peers) and binding commit behind a mapping cache, and
// topped by the paper's contribution, the automatic affinity module
// (internal/core), a thin adapter keeping the paper-named three-step
// API. The benchmark harness in this root package regenerates every
// table and figure of the paper's evaluation section; see DESIGN.md
// and EXPERIMENTS.md.
package orwlplace
