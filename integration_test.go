package orwlplace_test

// Cross-package integration tests: the end-to-end paths a user of the
// library follows, wired exactly like the README and the paper's
// usage story.

import (
	"net"
	"strings"
	"testing"

	"orwlplace/internal/apps/tracking"
	"orwlplace/internal/core"
	"orwlplace/internal/experiments"
	"orwlplace/internal/orwl"
	"orwlplace/internal/orwlnet"
	"orwlplace/internal/perfsim"
	"orwlplace/internal/topology"
	"orwlplace/internal/treematch"
)

// TestAutomaticModeEndToEnd is the paper's promise: an unmodified ORWL
// program, ORWL_AFFINITY=1 in the environment, and the runtime computes
// and applies the binding at the schedule barrier.
func TestAutomaticModeEndToEnd(t *testing.T) {
	t.Setenv(core.EnvVar, "1")
	prog := orwl.MustProgram(6, "main_loc")
	mod, active, err := core.EnableAutomatic(prog, topology.Fig2Machine(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !active {
		t.Fatal("ORWL_AFFINITY=1 did not activate the module")
	}
	err = prog.Run(func(ctx *orwl.TaskContext) error {
		if err := ctx.Scale("main_loc", 4096); err != nil {
			return err
		}
		here := orwl.NewHandle()
		if err := ctx.WriteInsert(here, orwl.Loc(ctx.TID(), "main_loc"), ctx.TID()); err != nil {
			return err
		}
		if ctx.TID() > 0 {
			there := orwl.NewHandle()
			if err := ctx.ReadInsert(there, orwl.Loc(ctx.TID()-1, "main_loc"), ctx.TID()); err != nil {
				return err
			}
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		// The binding exists by now; apply it to the live thread (a
		// no-op off Linux and for unbound tasks).
		release, err := ctx.BindSelf()
		if err != nil {
			return err
		}
		defer release()
		return here.Section(func(buf []byte) error {
			buf[0] = byte(ctx.TID())
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Binding()) != 6 {
		t.Errorf("binding = %v", prog.Binding())
	}
	// The mapping render names the tasks and the machine.
	out := core.RenderMapping(mod.Mapping(), nil)
	if !strings.Contains(out, "Fig2-4socket") {
		t.Errorf("render = %q", out)
	}
}

// TestMappingFeedsSimulator closes the loop the experiments take: a
// real program's extracted matrix, mapped by TreeMatch, evaluated by
// perfsim — affinity must beat the simulated OS scheduler.
func TestMappingFeedsSimulator(t *testing.T) {
	cfg := tracking.PaperConfig(tracking.HD)
	top := topology.SMP12E5()
	w, err := cfg.Profile(100)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := treematch.Map(top, w.Comm, treematch.Options{ControlThreads: true, RefineRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := perfsim.Simulate(top, w, &perfsim.Placement{
		ComputePU: mp.ComputePU, ControlPU: mp.ControlPU, LocalAlloc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := perfsim.Simulate(top, w, &perfsim.Placement{
		Dynamic: &perfsim.DynamicPolicy{Policy: perfsim.PolicyFor(top), Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Seconds >= dyn.Seconds {
		t.Errorf("affinity %gs not faster than dynamic %gs", bound.Seconds, dyn.Seconds)
	}
	if bound.CPUMigrations != 0 {
		t.Error("bound run migrated")
	}
}

// TestLocalTaskFeedsRemoteReader shares one live program location over
// TCP while the owning task iterates on it locally.
func TestLocalTaskFeedsRemoteReader(t *testing.T) {
	const rounds = 5
	prog := orwl.MustProgram(1, "feed")
	loc := prog.Location(orwl.Loc(0, "feed"))
	loc.Scale(8)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := orwlnet.NewServer(lis, map[string]*orwl.Location{"feed": loc})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// FIFO startup order: the local writer queues first (so the reader
	// sees round 0), and the writer only starts iterating once the
	// reader's request is queued (otherwise it would lap the reader,
	// since an absent reader never blocks the alternation).
	writerQueued := make(chan struct{})
	readerQueued := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- func() error {
			<-writerQueued
			c, err := orwlnet.Dial(lis.Addr().String())
			if err != nil {
				return err
			}
			defer c.Close()
			h, err := c.Insert("feed", orwl.Read)
			if err != nil {
				return err
			}
			close(readerQueued)
			for r := 0; r < rounds; r++ {
				if err := h.Section(true, func(h *orwlnet.RemoteHandle) error {
					data, err := h.Read()
					if err != nil {
						return err
					}
					if int(data[0]) != r {
						t.Errorf("round %d: read %d", r, data[0])
					}
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	err = prog.Run(func(ctx *orwl.TaskContext) error {
		h := orwl.NewHandle2()
		if err := ctx.WriteInsert(h, orwl.Loc(0, "feed"), 0); err != nil {
			return err
		}
		if err := ctx.Schedule(); err != nil {
			return err
		}
		close(writerQueued)
		<-readerQueued
		for r := 0; r < rounds; r++ {
			if err := h.Section(func(buf []byte) error {
				buf[0] = byte(r)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

// TestArtifactRegenerationSmoke regenerates every paper artifact once —
// the cmd/experiments happy path.
func TestArtifactRegenerationSmoke(t *testing.T) {
	arts, err := experiments.All()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, a := range arts {
		ids[a.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table1", "table2", "table3", "table4"} {
		if !ids[want] {
			t.Errorf("missing artifact %q", want)
		}
	}
}
